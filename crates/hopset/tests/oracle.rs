//! Oracle tests: the exploration engine (Algorithm 2) against brute-force
//! references, plus Theory-mode and schedule-ablation coverage.

use hopset::virtual_bfs::{ExploreScratch, Explorer};
use hopset::{
    build_hopset, BuildOptions, ClusterMemory, DeltaSchedule, HopsetParams, ParamMode, Partition,
};
use pgraph::exact::bellman_ford_hops;
use pgraph::{gen, Graph, UnionView, VId, Weight, INF};
use pram::{Executor, Ledger};
use proptest::prelude::*;

/// Brute-force cluster-to-cluster hop/threshold-bounded distance: the min
/// over member pairs of `d^{(hops)}`, or None if above the threshold.
fn oracle_cluster_dist(
    g: &Graph,
    part: &Partition,
    a: u32,
    b: u32,
    hops: usize,
    threshold: Weight,
) -> Option<Weight> {
    let view = UnionView::base_only(g);
    let sources = &part.clusters[a as usize].members;
    let d = bellman_ford_hops(&view, sources, hops);
    let best = part.clusters[b as usize]
        .members
        .iter()
        .map(|&v| d[v as usize])
        .fold(INF, f64::min);
    (best <= threshold).then_some(best)
}

/// Deterministic pseudo-random partition of the vertices into clusters
/// (each cluster's center = its smallest member).
fn make_partition(n: usize, clusters: usize, seed: u64) -> Partition {
    let clusters = clusters.clamp(1, n);
    let mut assign: Vec<Vec<VId>> = vec![Vec::new(); clusters];
    let mut state = seed | 1;
    for v in 0..n as u32 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        assign[(state % clusters as u64) as usize].push(v);
    }
    let mut cls: Vec<hopset::Cluster> = assign
        .into_iter()
        .filter(|m| !m.is_empty())
        .map(|members| hopset::Cluster {
            center: members[0],
            members,
        })
        .collect();
    cls.sort_by_key(|c| c.center);
    let mut cluster_of = vec![None; n];
    for (ci, c) in cls.iter().enumerate() {
        for &v in &c.members {
            cluster_of[v as usize] = Some(ci as u32);
        }
    }
    Partition {
        cluster_of,
        clusters: cls,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Algorithm 2's m(C) records equal the brute-force cluster distances
    /// whenever x is large enough to avoid truncation.
    #[test]
    fn detect_neighbors_matches_oracle(
        n in 10usize..40,
        m_per in 1usize..3,
        seed in any::<u64>(),
        nclusters in 2usize..8,
        thr in 2.0f64..12.0,
    ) {
        let g = gen::gnm_connected(n, n * m_per, seed, 1.0, 4.0);
        let part = make_partition(n, nclusters, seed ^ 0xabcdef);
        let cm = ClusterMemory::trivial(n, false);
        let view = UnionView::base_only(&g);
        let hops = n; // unbounded (cap at n): oracle uses the same
        let exec = Executor::shared(2);
        let ex = Explorer {
            exec: &exec,
            view: &view,
            part: &part,
            cm: &cm,
            threshold: thr,
            hop_limit: hops,
            record_paths: false,
        };
        let mut led = Ledger::new();
        let x = part.len() + 1; // no truncation
        let m = ex.detect_neighbors(x, &mut ExploreScratch::new(), &mut led);
        for a in 0..part.len() as u32 {
            for b in 0..part.len() as u32 {
                if a == b { continue; }
                let oracle = oracle_cluster_dist(&g, &part, a, b, hops, thr);
                let rec = m.labels(a as usize)
                    .iter()
                    .find(|l| l.src == part.center(b))
                    .map(|l| l.dist);
                match (oracle, rec) {
                    (None, None) => {}
                    (Some(o), Some(r)) => prop_assert!(
                        (o - r).abs() < 1e-9,
                        "clusters {a},{b}: oracle {o} vs engine {r}"
                    ),
                    (o, r) => prop_assert!(
                        false,
                        "clusters {a},{b}: oracle {o:?} vs engine {r:?}"
                    ),
                }
            }
        }
    }

    /// The BFS variant detects exactly the G̃-reachable clusters, in
    /// pulse = G̃-distance order (Lemma A.4).
    #[test]
    fn bfs_detection_matches_virtual_bfs(
        n in 10usize..36,
        seed in any::<u64>(),
        nclusters in 2usize..7,
        thr in 2.0f64..10.0,
    ) {
        let g = gen::gnm_connected(n, 2 * n, seed, 1.0, 4.0);
        let part = make_partition(n, nclusters, seed ^ 0x1234);
        let cm = ClusterMemory::trivial(n, false);
        let view = UnionView::base_only(&g);
        let exec = Executor::shared(2);
        let ex = Explorer {
            exec: &exec,
            view: &view,
            part: &part,
            cm: &cm,
            threshold: thr,
            hop_limit: n,
            record_paths: false,
        };
        // Reference: BFS on the brute-force virtual graph.
        let nc = part.len();
        let mut adj = vec![Vec::new(); nc];
        for a in 0..nc as u32 {
            for b in 0..nc as u32 {
                if a != b && oracle_cluster_dist(&g, &part, a, b, n, thr).is_some() {
                    adj[a as usize].push(b);
                }
            }
        }
        let mut ref_dist = vec![usize::MAX; nc];
        let mut queue = std::collections::VecDeque::new();
        ref_dist[0] = 0;
        queue.push_back(0u32);
        while let Some(c) = queue.pop_front() {
            for &d in &adj[c as usize] {
                if ref_dist[d as usize] == usize::MAX {
                    ref_dist[d as usize] = ref_dist[c as usize] + 1;
                    queue.push_back(d);
                }
            }
        }
        let mut led = Ledger::new();
        let det = ex.bfs(&[0], nc + 2, &mut ExploreScratch::new(), &mut led);
        for c in 0..nc {
            match (&det[c], ref_dist[c]) {
                (None, usize::MAX) => {}
                (Some(d), r) => prop_assert_eq!(d.pulse, r, "cluster {}", c),
                (None, r) => prop_assert!(false, "cluster {} missed at G~ dist {}", c, r),
            }
        }
    }

    /// Practical-mode realized path weights are real: every label's pw is
    /// achievable, hence ≥ the true distance between the endpoints.
    #[test]
    fn label_pw_at_least_distance(
        n in 10usize..36,
        seed in any::<u64>(),
        nclusters in 2usize..7,
    ) {
        let g = gen::gnm_connected(n, 2 * n, seed, 1.0, 6.0);
        let part = make_partition(n, nclusters, seed);
        let cm = ClusterMemory::trivial(n, false);
        let view = UnionView::base_only(&g);
        let exec = Executor::shared(2);
        let ex = Explorer {
            exec: &exec,
            view: &view,
            part: &part,
            cm: &cm,
            threshold: 20.0,
            hop_limit: n,
            record_paths: false,
        };
        let mut led = Ledger::new();
        let m = ex.detect_neighbors(part.len() + 1, &mut ExploreScratch::new(), &mut led);
        for (ci, recs) in m.iter_lists().enumerate() {
            for l in recs {
                // pw is always a realized path weight, never below dist.
                prop_assert!(l.pw >= l.dist - 1e-9);
                // With trivial cluster memory (no center detours yet), pw
                // realizes a member-to-member path, so it cannot undercut
                // the exact cluster-to-cluster distance.
                let src_idx = part.index_of_center(l.src).expect("center");
                if src_idx == ci as u32 { continue; }
                let oracle =
                    oracle_cluster_dist(&g, &part, src_idx, ci as u32, n, f64::INFINITY)
                        .expect("recorded labels are reachable");
                prop_assert!(l.pw >= oracle - 1e-6, "pw below true cluster distance");
            }
        }
    }
}

#[test]
fn theory_mode_end_to_end() {
    // Theory mode on a small graph: formula weights, rescaled ε, and the
    // full contract (β is astronomically large, so queries cap at n and
    // are exact — the interesting checks are no-shortcut and size).
    let g = gen::gnm_connected(64, 192, 4, 1.0, 6.0);
    let p = HopsetParams::new(
        64,
        0.5,
        4,
        0.3,
        ParamMode::Theory,
        g.aspect_ratio_bound(),
        None,
    )
    .unwrap();
    let built = build_hopset(&g, &p, BuildOptions::default());
    assert!(
        built.scales.iter().all(|s| s.weight_bound_violations == 0),
        "realized paths must fit the formula weights"
    );
    let bad = hopset::validate::find_shortcut_violations(&g, &built.hopset);
    assert!(bad.is_empty(), "{bad:?}");
    assert!((built.hopset.len() as f64) <= built.size_bound());
    let rep = hopset::validate::measure_stretch(&g, &built.hopset, &[0, 32], p.query_hops);
    assert_eq!(rep.undershoots, 0);
    assert!(rep.max_stretch <= 1.5 + 1e-9);
}

#[test]
fn paper_literal_schedule_still_sound() {
    // The printed α = ℓ·2^{k+1} schedule (DESIGN.md §4 erratum) remains
    // *sound* (never undershoots, stays within size bound) even though its
    // analysis is inconsistent; A1 quantifies the quality difference.
    let g = gen::clique_chain(16, 8, 2.0);
    let mut p = HopsetParams::new(
        g.num_vertices(),
        0.25,
        4,
        0.3,
        ParamMode::Practical,
        g.aspect_ratio_bound(),
        None,
    )
    .unwrap();
    p.delta_schedule = DeltaSchedule::PaperLiteral;
    let built = build_hopset(&g, &p, BuildOptions::default());
    let bad = hopset::validate::find_shortcut_violations(&g, &built.hopset);
    assert!(bad.is_empty());
    let rep = hopset::validate::measure_stretch(&g, &built.hopset, &[0, 64], p.query_hops);
    assert_eq!(rep.undershoots, 0);
    assert_eq!(rep.unreached, 0);
}

#[test]
fn explorer_over_union_views_uses_hopset_edges() {
    // Scale-k explorations run over G ∪ H_{k-1}: check that overlay edges
    // shorten *hop* counts in the engine (a 2-hop detection that the bare
    // graph needs many hops for).
    let g = gen::path(40);
    let overlay = vec![(0u32, 39u32, 39.0)];
    let view = UnionView::with_extra(&g, &overlay);
    let part = Partition::singletons(40);
    let cm = ClusterMemory::trivial(40, false);
    let exec = Executor::shared(2);
    let ex = Explorer {
        exec: &exec,
        view: &view,
        part: &part,
        cm: &cm,
        threshold: 40.0,
        hop_limit: 2, // two hops only: bare path cannot see 0 from 39
        record_paths: false,
    };
    let mut led = Ledger::new();
    let m = ex.detect_neighbors(50, &mut ExploreScratch::new(), &mut led);
    let rec = m
        .labels(39)
        .iter()
        .find(|l| l.src == 0)
        .expect("overlay edge must carry the label in one hop");
    assert_eq!(rec.dist, 39.0);
}
