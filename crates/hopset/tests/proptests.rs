//! Property tests pinning the flat data plane against the retired
//! Vec-of-Vec reference semantics: the `LabelArena`, the in-place
//! Algorithm-3 reduce, the scale-indexed store's slices, and the
//! incremental overlay blocks — same inputs ⇒ identical labels/overlays,
//! at lengths straddling `PAR_THRESHOLD` and thread counts 1–8.

use hopset::label::{
    labels_equal, reduce_labels, reduce_labels_in_place_scratch, reduce_labels_two_sort, Label,
    LabelArena, ReduceScratch,
};
use hopset::{ClusterMemory, EdgeKind, ExploreScratch, Explorer, Hopset, HopsetEdge, Partition};
use pgraph::{gen, OverlayCsrBuilder, UnionView, VId, Weight};
use pram::pool::PAR_THRESHOLD;
use pram::{scan, Executor, Ledger};
use proptest::prelude::*;

fn lab(src: VId, dist: Weight, pw: Weight) -> Label {
    Label {
        src,
        dist,
        pw,
        path: None,
    }
}

/// The retired reduce: stable two-pass sort (allocating). The in-place
/// version must agree on every paper-visible field.
fn reduce_reference(mut cands: Vec<Label>, x: usize) -> Vec<Label> {
    if cands.is_empty() {
        return cands;
    }
    cands.sort_by_key(|l| (l.src, l.dist.to_bits(), l.pw.to_bits()));
    cands.dedup_by(|b, a| b.src == a.src);
    cands.sort_by_key(|l| (l.dist.to_bits(), l.src));
    cands.truncate(x);
    cands
}

fn arb_labels() -> impl Strategy<Value = Vec<Label>> {
    proptest::collection::vec(
        (0u32..12, 0u32..40, 0u32..8).prop_map(|(src, d, extra)| {
            lab(src, d as f64 / 4.0, d as f64 / 4.0 + extra as f64 / 8.0)
        }),
        0..40,
    )
}

/// Random per-list operations replayed on both the arena and a
/// `Vec<Vec<Label>>` reference.
#[derive(Clone, Debug)]
enum ArenaOp {
    Push(usize, Label),
    SetList(usize, Vec<Label>),
}

fn arb_ops(n: usize, x: usize) -> impl Strategy<Value = Vec<ArenaOp>> {
    let label = (0u32..50, 0u32..30).prop_map(|(src, d)| lab(src, d as f64, d as f64));
    let op = (0usize..2, 0..n, proptest::collection::vec(label, 0..4)).prop_map(
        move |(kind, i, mut ls)| {
            if kind == 0 {
                match ls.pop() {
                    Some(l) => ArenaOp::Push(i, l),
                    None => ArenaOp::SetList(i, Vec::new()),
                }
            } else {
                ls.truncate(x);
                ArenaOp::SetList(i, ls)
            }
        },
    );
    proptest::collection::vec(op, 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// In-place Algorithm 3 == the retired stable reference on (src, dist,
    /// pw), for every truncation bound.
    #[test]
    fn reduce_in_place_matches_reference(cands in arb_labels(), x in 1usize..12) {
        let got = reduce_labels(cands.clone(), x);
        let expect = reduce_reference(cands, x);
        prop_assert!(labels_equal(&got, &expect));
    }

    /// The packed-u128-key fast path == the retired two-sort reference at
    /// lengths straddling the truncation bound `x` exactly (|cands| ∈
    /// {x−1, x, x+1, 2x+3}), with a *reused* scratch across cases (the
    /// hot-path calling convention), few sources (forced duplicates), and
    /// quantized distances (forced rank ties decided by `src`).
    #[test]
    fn packed_reduce_straddles_x_with_duplicates_and_ties(
        x in 1usize..10,
        delta in 0usize..4,
        cands in proptest::collection::vec(
            (0u32..5, 0u32..6, 0u32..4).prop_map(|(src, d, extra)| {
                lab(src, d as f64 / 2.0, d as f64 / 2.0 + extra as f64 / 4.0)
            }),
            0..24,
        ),
    ) {
        // Trim/extend the sample so the length lands exactly on the
        // boundary cases around x.
        let want_len = match delta {
            0 => x.saturating_sub(1),
            1 => x,
            2 => x + 1,
            _ => 2 * x + 3,
        };
        let mut cands = cands;
        while cands.len() < want_len {
            let i = cands.len() as u32;
            cands.push(lab(i % 5, (i % 6) as f64 / 2.0, (i % 6) as f64 / 2.0));
        }
        cands.truncate(want_len);

        let mut scratch = ReduceScratch::new();
        let mut fast = cands.clone();
        reduce_labels_in_place_scratch(&mut fast, x, &mut scratch);
        let mut reference = cands.clone();
        reduce_labels_two_sort(&mut reference, x);
        prop_assert!(labels_equal(&fast, &reference), "x={} len={}", x, want_len);
        // Scratch reuse must not leak state into a second call on the
        // already-reduced list (idempotence, same scratch).
        let mut fast2 = reference.clone();
        reduce_labels_in_place_scratch(&mut fast2, x, &mut scratch);
        let mut ref2 = reference.clone();
        reduce_labels_two_sort(&mut ref2, x);
        prop_assert!(labels_equal(&fast2, &ref2));
    }

    /// Arena list semantics == Vec-of-Vec reference under arbitrary push /
    /// overwrite interleavings (the `x`-cap is the arena's legality
    /// precondition, so reference pushes beyond `x` are skipped too).
    #[test]
    fn arena_matches_vec_of_vec(ops in arb_ops(6, 3)) {
        let (n, x) = (6usize, 3usize);
        let mut arena = LabelArena::new();
        arena.reset(n, x);
        let mut reference: Vec<Vec<Label>> = vec![Vec::new(); n];
        for op in ops {
            match op {
                ArenaOp::Push(i, l) => {
                    if reference[i].len() < x {
                        reference[i].push(l.clone());
                        arena.push(i, l);
                    }
                }
                ArenaOp::SetList(i, ls) => {
                    reference[i] = ls.clone();
                    arena.set_list(i, ls.into_iter());
                }
            }
            for (got, expect) in arena.iter_lists().zip(&reference) {
                prop_assert!(labels_equal(got, expect));
            }
        }
        // Reset returns to all-empty without reallocation concerns.
        arena.reset(n, x);
        prop_assert!(arena.iter_lists().all(|l| l.is_empty()));
    }

    /// Scale-indexed slices == the retired linear-scan reference on random
    /// scale-grouped edge streams, including absent scales and global ids.
    #[test]
    fn scale_slices_match_scan_reference(
        sizes in proptest::collection::vec(0usize..9, 1..6),
        gap in 1u32..3,
    ) {
        let mut h = Hopset::new();
        let mut reference: Vec<HopsetEdge> = Vec::new();
        let mut id = 0u32;
        for (si, &sz) in sizes.iter().enumerate() {
            let scale = si as u32 * gap;
            for j in 0..sz {
                let e = HopsetEdge {
                    u: id % 7,
                    v: id % 7 + 1 + (j as u32 % 3),
                    w: 1.0 + j as f64,
                    scale,
                    kind: EdgeKind::Interconnect { phase: 0 },
                    path: None,
                };
                h.push(e);
                reference.push(e);
                id += 1;
            }
        }
        let max_scale = sizes.len() as u32 * gap + 2;
        for k in 0..max_scale {
            // Retired reference: O(|H|) scan + filtered copies.
            let mut overlay = Vec::new();
            let mut ids = Vec::new();
            for (i, e) in reference.iter().enumerate() {
                if e.scale == k {
                    overlay.push((e.u, e.v, e.w));
                    ids.push(i as u32);
                }
            }
            let sl = h.scale_slice(k);
            prop_assert_eq!(sl.to_overlay_vec(), overlay, "scale {}", k);
            let got_ids: Vec<u32> = (0..sl.len()).map(|i| sl.global_id(i)).collect();
            prop_assert_eq!(got_ids, ids, "scale {} ids", k);
        }
        // size_by_scale == scan-accumulated counts.
        let mut counts: Vec<(u32, usize)> = Vec::new();
        for e in &reference {
            match counts.iter_mut().find(|(k, _)| *k == e.scale) {
                Some((_, c)) => *c += 1,
                None => counts.push((e.scale, 1)),
            }
        }
        counts.sort_unstable();
        prop_assert_eq!(h.size_by_scale(), counts);
        prop_assert_eq!(h.all_slice().len(), reference.len());
    }
}

/// The packed-key reduce at candidate-list lengths straddling
/// `PAR_THRESHOLD` — far beyond what real pulses produce per vertex, but
/// it pins the packed key's index bits (bits 0..32 of the low word) at
/// list sizes where a narrower index field would already have collided,
/// with heavy duplicate sources and tied (dist, src) ranks throughout.
#[test]
fn packed_reduce_matches_two_sort_straddling_par_threshold() {
    for len in [PAR_THRESHOLD - 1, PAR_THRESHOLD, PAR_THRESHOLD + 1] {
        let mut state = 0x2545f4914f6cdd1du64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let cands: Vec<Label> = (0..len)
            .map(|_| {
                let r = next();
                // 64 sources over thousands of candidates: every source
                // duplicated ~len/64 times; dist quantized to eighths so
                // rank ties are everywhere.
                lab(
                    (r % 64) as u32,
                    ((r >> 8) % 32) as f64 / 8.0,
                    ((r >> 16) % 16) as f64 / 8.0,
                )
            })
            .collect();
        for x in [1usize, 3, 64, len] {
            let mut scratch = ReduceScratch::new();
            let mut fast = cands.clone();
            reduce_labels_in_place_scratch(&mut fast, x, &mut scratch);
            let mut reference = cands.clone();
            reduce_labels_two_sort(&mut reference, x);
            assert!(
                labels_equal(&fast, &reference),
                "len={len} x={x}: packed reduce diverged from two-sort"
            );
        }
    }
}

/// The overlay builder's parallel counting-sort path, straddling
/// `PAR_THRESHOLD` (the scan runs over the `n`-length degree array) at
/// thread counts 1–8: bit-identical blocks to the sequential scan.
#[test]
fn builder_parallel_scan_matches_sequential_across_threads() {
    for n in [PAR_THRESHOLD - 1, PAR_THRESHOLD, PAR_THRESHOLD + 1] {
        let g = pgraph::Graph::empty(n);
        let m = 3 * n / 2;
        let us: Vec<VId> = (0..m).map(|i| (i * 7919 % n) as VId).collect();
        let vs: Vec<VId> = (0..m)
            .map(|i| {
                let u = i * 7919 % n;
                ((u + 1 + i % (n - 1)) % n) as VId
            })
            .collect();
        let ws: Vec<Weight> = (0..m).map(|i| 1.0 + (i % 13) as f64).collect();
        let mut seq_builder = OverlayCsrBuilder::new(n);
        seq_builder.append_scale_seq(&us, &vs, &ws);
        let seq_view = UnionView::with_csr(&g, seq_builder.block(0));
        for threads in [1usize, 2, 3, 4, 8] {
            let exec = Executor::shared(threads);
            let mut ledger = Ledger::new();
            let mut b = OverlayCsrBuilder::new(n);
            b.append_scale(&us, &vs, &ws, |deg| {
                scan::exclusive_prefix_sum(&exec, deg, &mut ledger).0
            });
            let view = UnionView::with_csr(&g, b.block(0));
            for v in (0..n as VId).step_by(97) {
                let a: Vec<_> = view.neighbors(v).collect();
                let e: Vec<_> = seq_view.neighbors(v).collect();
                assert_eq!(a, e, "n={n} threads={threads} vertex={v}");
            }
            assert_eq!(view.num_extra(), seq_view.num_extra());
        }
    }
}

/// The arena-backed exploration engine at a vertex count straddling
/// `PAR_THRESHOLD` (so the pulse rounds genuinely fan out), thread counts
/// 1–8: identical label tables everywhere.
#[test]
fn arena_explorer_straddles_par_threshold_across_threads() {
    let n = PAR_THRESHOLD + 4;
    let g = gen::path(n);
    let view = UnionView::base_only(&g);
    let part = Partition::singletons(n);
    let cm = ClusterMemory::trivial(n, false);
    let run = |threads: usize| {
        let exec = Executor::shared(threads);
        let ex = Explorer {
            exec: &exec,
            view: &view,
            part: &part,
            cm: &cm,
            threshold: 3.5,
            hop_limit: 4,
            record_paths: false,
        };
        let mut led = Ledger::new();
        let mut scratch = ExploreScratch::new();
        (ex.detect_neighbors(3, &mut scratch, &mut led), led)
    };
    let (base, base_ledger) = run(1);
    for threads in [2usize, 4, 8] {
        let (got, ledger) = run(threads);
        assert_eq!(got.num_lists(), base.num_lists());
        for (v, (a, b)) in got.iter_lists().zip(base.iter_lists()).enumerate() {
            assert!(labels_equal(a, b), "threads={threads} vertex={v}");
        }
        assert_eq!(ledger, base_ledger, "threads={threads}");
    }
}
