//! Baselines for the experiments: exact sequential Dijkstra (the work
//! baseline of E10), plain hop-limited Bellman–Ford *without* a hopset
//! (what the hopset accelerates), and convergence-round counting.

use pgraph::exact::{self, SsspResult};
use pgraph::{Graph, UnionView, VId, Weight};
use pram::{bford, Executor, Ledger};

/// Exact sequential Dijkstra (comparison point for counted work and
/// wall-clock).
pub fn dijkstra_exact(g: &Graph, source: VId) -> SsspResult {
    exact::dijkstra(g, source)
}

/// Plain parallel Bellman–Ford on `G` alone with a hop budget. Returns
/// `(distances, ledger)`; distances are `d^{(hops)}_G`, *not* `(1+ε)`
/// anything — the whole point of the comparison.
pub fn plain_bellman_ford(g: &Graph, source: VId, hops: usize) -> (Vec<Weight>, Ledger) {
    let view = UnionView::base_only(g);
    let mut ledger = Ledger::new();
    // xlint: allow(ambient-threads, compat entry point captures the process executor once at the API boundary)
    let r = bford::bellman_ford(&Executor::current(), &view, &[source], hops, &mut ledger);
    (r.dist, ledger)
}

/// Rounds a plain Bellman–Ford needs to converge to the exact distances —
/// the paper's motivation: without a hopset this is Θ(hop diameter), which
/// can be Θ(n); with a hopset it is β = polylog (E10's headline row).
pub fn bf_rounds_to_converge(g: &Graph, source: VId) -> usize {
    let view = UnionView::base_only(g);
    let mut ledger = Ledger::new();
    let r = bford::bellman_ford(
        // xlint: allow(ambient-threads, compat entry point captures the process executor once at the API boundary)
        &Executor::current(),
        &view,
        &[source],
        g.num_vertices() + 1,
        &mut ledger,
    );
    // `converged_at` = first round with no change; convergence was reached
    // the round before.
    r.converged_at.map(|c| c - 1).unwrap_or(r.rounds_run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgraph::gen;

    #[test]
    fn convergence_rounds_on_path() {
        // Path of n vertices: exactly n-1 rounds to converge from one end.
        let g = gen::path(40);
        assert_eq!(bf_rounds_to_converge(&g, 0), 39);
        // From the middle: half.
        assert_eq!(bf_rounds_to_converge(&g, 20), 20);
    }

    #[test]
    fn plain_bf_hop_budget() {
        let g = gen::path(20);
        let (d, ledger) = plain_bellman_ford(&g, 0, 5);
        assert_eq!(d[5], 5.0);
        assert_eq!(d[6], pgraph::INF);
        assert_eq!(ledger.depth(), 5);
    }

    #[test]
    fn dijkstra_wrapper() {
        let g = gen::gnm_connected(50, 120, 2, 1.0, 3.0);
        let r = dijkstra_exact(&g, 0);
        assert_eq!(r.dist[0], 0.0);
        assert!(r.dist.iter().all(|d| d.is_finite()));
    }
}
