//! The landmark plane: triangle-inequality distance bounds from a few
//! cached `(1+ε)`-rows, serving point-to-point queries for sources the
//! row cache has never seen.
//!
//! PR 6's serving layer left one hole: a point-to-point *miss* pays a
//! full early-exit exploration (~tens of ms at n = 64k) even though the
//! answer is a single number. This module closes it with the classic
//! landmark (ALT-style) trick, adapted to *approximate* rows: pick `L`
//! landmarks by a deterministic farthest-point sweep, cache their full
//! distance rows once (the "few sources, whole rows" economics that make
//! multi-source hopset computation pay off), and answer a p2p query
//! `(u, v)` from the sandwich
//!
//! > `lower(u, v) ≤ d(u, v) ≤ upper(u, v)`
//!
//! in `O(L)` time — no exploration at all — whenever the sandwich is
//! tight enough (`upper ≤ (1+δ)·lower`) for the configured answer budget
//! `δ`.
//!
//! **Soundness with `(1+ε)`-rows** (DESIGN.md §9). The cached rows are
//! the backend's, so they satisfy `d ≤ d̃ ≤ (1+ε)·d` per entry. Writing
//! `ũ = d̃(ℓ, u)`, `ṽ = d̃(ℓ, v)`:
//!
//! * **upper**: `d(u,v) ≤ d(ℓ,u) + d(ℓ,v) ≤ ũ + ṽ` — approximation
//!   error only *helps* the triangle upper bound;
//! * **lower**: `d(u,v) ≥ d(ℓ,u) − d(ℓ,v) ≥ ũ/(1+ε) − ṽ` (and
//!   symmetrically), so the usual `|ũ − ṽ|` must be *deflated* by the
//!   row stretch before it is a sound lower bound.
//!
//! When the certificate `upper ≤ (1+δ)·lower` holds, the returned answer
//! `upper` satisfies `d ≤ upper ≤ (1+δ)·lower ≤ (1+δ)·d`: the composed
//! stretch of a landmark answer is **`1+δ` against the exact distance**
//! (the `ε` is already absorbed by the deflation). Because the best
//! achievable ratio with `(1+ε)`-rows is about `(1+ε)²` even when `u`
//! *is* a landmark, configure `δ > ε·(2+ε)` or the plane will certify
//! (almost) nothing and every query will fall through.
//!
//! Determinism: landmark selection is a pure function of (graph rows,
//! config) — a farthest-point sweep seeded at vertex 0, ties broken by
//! smallest vertex id, no RNG anywhere — and the rows themselves are
//! bit-identical at every thread count by the pool contract (§5), so the
//! whole plane (selection, bounds, certificates) is reproducible bit for
//! bit across rebuilds and thread counts (`tests/landmark.rs`).

use crate::oracle::{check_source, DistanceMatrix, DistanceOracle, SsspError};
use pgraph::{VId, Weight, INF};
use pram::Ledger;

/// Configuration for [`LandmarkPlane::build`]: how many landmarks, and
/// the answer budget `δ`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LandmarkConfig {
    /// Number of landmarks `L ≥ 1` (each costs one full row exploration
    /// at attach time and `O(n)` resident memory).
    pub count: usize,
    /// Answer budget `δ > 0`: a query is answered from the plane only if
    /// `upper ≤ (1+δ)·lower`, making the answer a `(1+δ)`-approximation
    /// of the exact distance. Budgets at or below the row stretch's
    /// `ε·(2+ε)` certify almost nothing (module docs).
    pub delta: f64,
}

impl LandmarkConfig {
    /// A config with `count` landmarks and answer budget `delta`.
    pub fn new(count: usize, delta: f64) -> Self {
        LandmarkConfig { count, delta }
    }
}

/// The sandwich for one query pair ([`LandmarkPlane::bounds`]):
/// `lower ≤ d(u, v) ≤ upper`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LandmarkBounds {
    /// Sound lower bound on the exact distance (deflated difference
    /// bound; `INF` certifies the pair disconnected).
    pub lower: Weight,
    /// Sound upper bound on the exact distance (triangle bound).
    pub upper: Weight,
}

/// `L` landmarks with their cached `(1+ε)`-rows: a deterministic,
/// immutable, `Send + Sync` answer plane for point-to-point queries.
///
/// Built once from any [`DistanceOracle`] backend, then queried without
/// locks: [`bounds`](LandmarkPlane::bounds) returns the sandwich,
/// [`certify`](LandmarkPlane::certify) turns it into an answer when the
/// configured budget is met.
///
/// ```
/// use pgraph::gen;
/// use sssp::{DistanceOracle, LandmarkConfig, LandmarkPlane, Oracle};
///
/// let g = gen::road_grid(10, 10, 3, 1.0, 6.0);
/// let oracle = Oracle::builder(g).eps(0.25).kappa(4).build().unwrap();
/// let plane = LandmarkPlane::build(&oracle, &LandmarkConfig::new(4, 1.0)).unwrap();
/// let exact = pgraph::exact::dijkstra(oracle.graph(), 7).dist;
/// let b = plane.bounds(7, 42).unwrap();
/// assert!(b.lower <= exact[42] + 1e-9);
/// assert!(b.upper >= exact[42] - 1e-9);
/// if let Some(d) = plane.certify(7, 42) {
///     assert!(d >= exact[42] - 1e-9);
///     assert!(d <= (1.0 + plane.delta()) * exact[42] + 1e-9);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct LandmarkPlane {
    /// The chosen landmarks, in selection order.
    landmarks: Vec<VId>,
    /// `landmarks.len() × n` row matrix: `rows.row(i)[v] = d̃(ℓᵢ, v)`.
    rows: DistanceMatrix,
    /// The backend's row stretch minus one (`d̃ ≤ (1+ε)·d`).
    eps: f64,
    /// The answer budget δ.
    delta: f64,
    /// Build cost: the seed row plus one row per landmark, absorbed as
    /// parallel (they are independent explorations).
    build_ledger: Ledger,
}

/// Deterministic farthest-point argmax: the vertex maximizing `key`,
/// treating `INF` as larger than any finite value (so uncovered
/// components are reached first), ties broken by smallest vertex id.
fn sweep_argmax(key: &[Weight]) -> VId {
    let mut best = 0usize;
    for (v, &k) in key.iter().enumerate().skip(1) {
        // Strict `>` keeps the smallest id among equals; INF > finite
        // holds natively for f64 and INF > INF is false, so the id rule
        // covers the all-INF and multi-INF cases too.
        if k > key[best] {
            best = v;
        }
    }
    best as VId
}

impl LandmarkPlane {
    /// Select `cfg.count` landmarks by the deterministic farthest-point
    /// sweep and cache their rows, computed through the backend's batched
    /// [`DistanceOracle::distances_multi`] path.
    ///
    /// The sweep: compute the row of vertex 0 (the fixed seed — discarded
    /// afterwards), take the farthest vertex as the first landmark, then
    /// repeatedly take the vertex farthest from the chosen set (`INF`
    /// counts as farthest, so disconnected components get covered; ties
    /// break to the smallest id). Selection depends only on the rows,
    /// which are bit-identical at every thread count, so the plane is a
    /// pure function of (graph, backend config, `cfg`).
    pub fn build<O: DistanceOracle + ?Sized>(
        backend: &O,
        cfg: &LandmarkConfig,
    ) -> Result<Self, SsspError> {
        let n = backend.num_vertices();
        if cfg.count == 0 || cfg.count > n {
            return Err(SsspError::Config(format!(
                "landmark count must be in [1, n = {n}], got {}",
                cfg.count
            )));
        }
        if !(cfg.delta > 0.0 && cfg.delta.is_finite()) {
            return Err(SsspError::Config(format!(
                "landmark answer budget delta must be positive and finite, got {}",
                cfg.delta
            )));
        }
        let eps = backend.stretch_bound() - 1.0;

        let mut build_ledger = Ledger::new();
        // Seed row: distances from vertex 0, used only to pick ℓ₀.
        let seed = backend.distances_multi(&[0])?;
        build_ledger.absorb_parallel(&seed.ledger);

        let mut landmarks: Vec<VId> = Vec::with_capacity(cfg.count);
        let mut rows = DistanceMatrix::with_capacity(cfg.count, n);
        // min over chosen landmarks of d̃(ℓ, v); starts as the seed row.
        let mut min_dist: Vec<Weight> = seed.dist.row(0).to_vec();
        for _ in 0..cfg.count {
            let next = sweep_argmax(&min_dist);
            let r = backend.distances_multi(&[next])?;
            build_ledger.absorb_parallel(&r.ledger);
            let row = r.dist.row(0);
            for (m, &d) in min_dist.iter_mut().zip(row) {
                if d < *m {
                    *m = d;
                }
            }
            landmarks.push(next);
            rows.push_row(row);
        }

        Ok(LandmarkPlane {
            landmarks,
            rows,
            eps,
            delta: cfg.delta,
            build_ledger,
        })
    }

    /// The chosen landmarks, in selection order.
    pub fn landmarks(&self) -> &[VId] {
        &self.landmarks
    }

    /// The cached row of the `i`-th landmark.
    pub fn row(&self, i: usize) -> &[Weight] {
        self.rows.row(i)
    }

    /// Number of vertices of the backing graph.
    pub fn num_vertices(&self) -> usize {
        self.rows.num_targets()
    }

    /// The answer budget δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The row stretch `ε` the lower bounds are deflated by.
    pub fn row_eps(&self) -> f64 {
        self.eps
    }

    /// Guaranteed multiplicative stretch of certified answers against the
    /// **exact** distance: `1 + δ` (module docs — the row `ε` is absorbed
    /// by the lower-bound deflation).
    pub fn stretch_bound(&self) -> f64 {
        1.0 + self.delta
    }

    /// The attach-time cost: seed row + one row per landmark, charged as
    /// parallel explorations.
    pub fn build_cost(&self) -> &Ledger {
        &self.build_ledger
    }

    /// The sandwich `lower ≤ d(u, v) ≤ upper` for one pair, scanned over
    /// all landmarks in selection order (`O(L)`).
    ///
    /// A landmark that reaches exactly one endpoint certifies the pair
    /// disconnected (`lower = upper = INF` — rows are hop-budget-complete,
    /// so `INF` means unreachable); one that reaches neither contributes
    /// nothing.
    pub fn bounds(&self, u: VId, v: VId) -> Result<LandmarkBounds, SsspError> {
        let n = self.num_vertices();
        check_source(n, u)?;
        check_source(n, v)?;
        if u == v {
            return Ok(LandmarkBounds {
                lower: 0.0,
                upper: 0.0,
            });
        }
        let deflate = 1.0 / (1.0 + self.eps);
        let (ui, vi) = (u as usize, v as usize);
        let mut lower: Weight = 0.0;
        let mut upper: Weight = INF;
        for i in 0..self.landmarks.len() {
            let row = self.rows.row(i);
            let (du, dv) = (row[ui], row[vi]);
            match (du.is_finite(), dv.is_finite()) {
                (true, true) => {
                    let up = du + dv;
                    if up < upper {
                        upper = up;
                    }
                    let lo = (du * deflate - dv).max(dv * deflate - du);
                    if lo > lower {
                        lower = lo;
                    }
                }
                (true, false) | (false, true) => {
                    // ℓ reaches one endpoint but not the other: the
                    // endpoints lie in different components.
                    return Ok(LandmarkBounds {
                        lower: INF,
                        upper: INF,
                    });
                }
                (false, false) => {}
            }
        }
        Ok(LandmarkBounds { lower, upper })
    }

    /// Answer the pair from the plane if the sandwich meets the budget:
    /// `Some(upper)` when `upper ≤ (1+δ)·lower` (a `(1+δ)`-approximation
    /// of the exact distance), `Some(INF)` when a landmark certifies the
    /// pair disconnected, `Some(0)` for `u == v`, else `None` (caller
    /// falls through to an exploration). Out-of-range vertices return
    /// `None` — range errors belong to the fallback path's checks.
    pub fn certify(&self, u: VId, v: VId) -> Option<Weight> {
        let b = self.bounds(u, v).ok()?;
        if b.lower.is_infinite() {
            return Some(INF);
        }
        if b.upper <= (1.0 + self.delta) * b.lower {
            return Some(b.upper);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Oracle;
    use pgraph::{exact, gen};

    fn grid_plane(count: usize, delta: f64) -> (Oracle, LandmarkPlane) {
        let g = gen::road_grid(9, 9, 4, 1.0, 6.0);
        let oracle = Oracle::builder(g).eps(0.25).kappa(4).build().unwrap();
        let plane = LandmarkPlane::build(&oracle, &LandmarkConfig::new(count, delta)).unwrap();
        (oracle, plane)
    }

    #[test]
    fn config_validation_is_typed() {
        let g = gen::path(8);
        let oracle = Oracle::builder(g).build().unwrap();
        for bad in [
            LandmarkConfig::new(0, 1.0),
            LandmarkConfig::new(9, 1.0),
            LandmarkConfig::new(2, 0.0),
            LandmarkConfig::new(2, f64::INFINITY),
        ] {
            assert!(
                matches!(
                    LandmarkPlane::build(&oracle, &bad),
                    Err(SsspError::Config(_))
                ),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn selection_is_farthest_point_and_deterministic() {
        let (_, a) = grid_plane(4, 1.0);
        let (_, b) = grid_plane(4, 1.0);
        assert_eq!(a.landmarks(), b.landmarks(), "rebuild must agree");
        assert_eq!(a.landmarks().len(), 4);
        // Landmarks are distinct (a chosen landmark has min-dist 0 and
        // can never be the farthest again on a connected graph).
        let mut ls = a.landmarks().to_vec();
        ls.sort_unstable();
        ls.dedup();
        assert_eq!(ls.len(), 4);
        for i in 0..4 {
            assert_eq!(
                a.row(i).iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
                b.row(i).iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
                "row {i} must be bit-identical across rebuilds"
            );
        }
    }

    #[test]
    fn sandwich_is_sound_against_exact_distances() {
        let (oracle, plane) = grid_plane(5, 1.0);
        let n = oracle.num_vertices();
        for u in [0usize, 13, 40, 80] {
            let exact = exact::dijkstra(oracle.graph(), u as u32).dist;
            for v in 0..n {
                let b = plane.bounds(u as u32, v as u32).unwrap();
                assert!(
                    b.lower <= exact[v] + 1e-9,
                    "({u},{v}): lower {} > exact {}",
                    b.lower,
                    exact[v]
                );
                assert!(
                    b.upper >= exact[v] - 1e-9,
                    "({u},{v}): upper {} < exact {}",
                    b.upper,
                    exact[v]
                );
            }
        }
    }

    #[test]
    fn certified_answers_meet_the_composed_stretch() {
        let (oracle, plane) = grid_plane(6, 1.0);
        let n = oracle.num_vertices();
        let mut certified = 0usize;
        for u in (0..n).step_by(7) {
            let exact = exact::dijkstra(oracle.graph(), u as u32).dist;
            for v in (0..n).step_by(5) {
                if let Some(d) = plane.certify(u as u32, v as u32) {
                    certified += 1;
                    assert!(d >= exact[v] - 1e-9, "({u},{v}): {d} < {}", exact[v]);
                    assert!(
                        d <= plane.stretch_bound() * exact[v] + 1e-9,
                        "({u},{v}): {d} > (1+delta)*{}",
                        exact[v]
                    );
                }
            }
        }
        assert!(certified > 0, "a 2x budget must certify some grid pairs");
    }

    #[test]
    fn self_pairs_and_landmark_pairs_certify() {
        let (_, plane) = grid_plane(4, 1.0);
        assert_eq!(plane.certify(17, 17), Some(0.0));
        // A landmark endpoint has the tightest possible sandwich
        // (ratio ≤ (1+ε)² = 1.5625 < 1+δ = 2).
        let l = plane.landmarks()[0];
        assert!(plane.certify(l, l / 2 + 1).is_some());
    }

    #[test]
    fn disconnected_pairs_are_certified_infinite() {
        // Two components: a path 0-1-2-3 and an isolated pair 4-5.
        let mut b = pgraph::GraphBuilder::new(6);
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 3), (4, 5)] {
            b.add_edge(u, v, 1.0);
        }
        let g = b.build().unwrap();
        let oracle = Oracle::builder(g).eps(0.5).build().unwrap();
        let plane = LandmarkPlane::build(&oracle, &LandmarkConfig::new(2, 1.0)).unwrap();
        // The sweep's INF-first rule must have covered both components.
        assert_eq!(plane.certify(0, 4), Some(INF));
        assert_eq!(plane.certify(5, 2), Some(INF));
        // Within-component queries still work.
        let b = plane.bounds(4, 5).unwrap();
        assert!(b.upper.is_finite());
    }

    #[test]
    fn out_of_range_bounds_are_typed_and_certify_declines() {
        let (_, plane) = grid_plane(2, 1.0);
        assert!(matches!(
            plane.bounds(0, 999),
            Err(SsspError::InvalidSource { source: 999, .. })
        ));
        assert_eq!(plane.certify(999, 0), None);
    }

    #[test]
    fn tiny_budget_certifies_nothing_but_trivial_pairs() {
        // δ = 0.01 « ε(2+ε) = 0.5625: the deflated sandwich can never be
        // that tight on distinct connected pairs.
        let (oracle, plane) = grid_plane(4, 0.01);
        let n = oracle.num_vertices() as u32;
        for u in (0..n).step_by(11) {
            for v in (1..n).step_by(13) {
                if u != v {
                    assert_eq!(plane.certify(u, v), None, "({u},{v})");
                }
            }
        }
    }
}
