//! Δ-stepping \[Meyer–Sanders 2003\]: the classical *practical* parallel
//! SSSP baseline, added to ground experiment E10 with a real parallel
//! competitor (the paper's related work positions PRAM SSSP against
//! exactly this family of label-correcting algorithms: fast in practice,
//! but with Θ(diameter/Δ) depth on adversarial inputs, which is what the
//! polylog-depth hopset approach eliminates).
//!
//! Implementation: bucketed label-correcting. Edges lighter than Δ
//! ("light") are relaxed iteratively inside a bucket until it settles;
//! heavier ones once when the bucket settles. Relaxation batches run in
//! parallel (deterministic: each round computes per-vertex minima with the
//! usual total order, double-buffered).

use pgraph::{Graph, VId, Weight, INF};
use pram::{prim, Executor, Ledger};

/// Result of a Δ-stepping run.
#[derive(Clone, Debug)]
pub struct DeltaSteppingResult {
    /// Exact distances from the source.
    pub dist: Vec<Weight>,
    /// Buckets processed.
    pub buckets: usize,
    /// Total inner (light-edge) iterations.
    pub light_rounds: usize,
    /// PRAM-style counted cost.
    pub ledger: Ledger,
}

/// Run Δ-stepping from `source` with bucket width `delta`.
///
/// Returns **exact** distances (it is a label-correcting method); its role
/// here is as a *depth* baseline: `buckets × light_rounds` is the round
/// count a synchronous parallel machine would pay.
pub fn delta_stepping(g: &Graph, source: VId, delta: Weight) -> DeltaSteppingResult {
    // xlint: allow(ambient-threads, compat entry point captures the process executor once at the API boundary)
    delta_stepping_on(&Executor::current(), g, source, delta)
}

/// Like [`delta_stepping`], on an explicit executor (what
/// [`crate::DeltaSteppingOracle`] owns): every relaxation batch is one
/// parallel round on `exec`.
pub fn delta_stepping_on(
    exec: &Executor,
    g: &Graph,
    source: VId,
    delta: Weight,
) -> DeltaSteppingResult {
    run(exec, g, source, None, delta).0
}

/// Result of a target-aware Δ-stepping run ([`delta_stepping_to_on`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeltaSteppingTargetResult {
    /// Exact distance `source → target`, bit-identical to the full run's
    /// `dist[target]`.
    pub dist: Weight,
    /// Buckets actually processed (≤ the full run's count).
    pub buckets: usize,
    /// Whether the settled-bucket criterion stopped the run before all
    /// buckets drained.
    pub settled_early: bool,
}

/// Point-to-point Δ-stepping with early exit on the settled-bucket
/// invariant: when the next bucket to process is `b`, every tentative
/// distance in a bucket `< b` is final — all later relaxations originate
/// from labels `≥ b·Δ` plus a strictly positive weight, so they write only
/// values `> b·Δ`. The moment the target's tentative label falls in a
/// bucket below `b` the run stops; updates apply only on strict
/// improvement, so the full run never rewrites that label and the early
/// answer is bit-identical (the pop-`v` termination of DESIGN.md §9, in
/// bucket form).
pub fn delta_stepping_to_on(
    exec: &Executor,
    g: &Graph,
    source: VId,
    target: VId,
    delta: Weight,
) -> DeltaSteppingTargetResult {
    let (r, settled_early) = run(exec, g, source, Some(target), delta);
    DeltaSteppingTargetResult {
        dist: r.dist[target as usize],
        buckets: r.buckets,
        settled_early,
    }
}

/// The shared bucket loop; with `target = Some(t)` it stops (returning
/// `true` in the second slot) once `t`'s label is provably final.
fn run(
    exec: &Executor,
    g: &Graph,
    source: VId,
    target: Option<VId>,
    delta: Weight,
) -> (DeltaSteppingResult, bool) {
    assert!(delta > 0.0 && delta.is_finite());
    let n = g.num_vertices();
    let mut ledger = Ledger::new();
    let mut dist = vec![INF; n];
    dist[source as usize] = 0.0;

    let bucket_of = |d: Weight| -> usize { (d / delta) as usize };
    let mut current_bucket = 0usize;
    let mut buckets = 0usize;
    let mut light_rounds = 0usize;
    let mut settled_early = false;

    loop {
        // Find the next non-empty bucket.
        let next = dist
            .iter()
            .filter(|d| d.is_finite())
            .map(|&d| bucket_of(d))
            .filter(|&b| b >= current_bucket)
            .min();
        let Some(b) = next else { break };
        // Settled-bucket early exit: the target's label sits strictly
        // below the bucket about to be processed — it is final.
        if let Some(t) = target {
            let dt = dist[t as usize];
            if dt.is_finite() && bucket_of(dt) < b {
                settled_early = true;
                break;
            }
        }
        buckets += 1;

        // Settle the bucket with light-edge rounds.
        loop {
            light_rounds += 1;
            ledger.step(2 * g.num_edges() as u64 + n as u64);
            let prev = &dist;
            let updates: Vec<Option<Weight>> = prim::par_map_range(exec, n, |v| {
                let mut best = prev[v];
                for (u, w) in g.neighbors(v as VId) {
                    if w >= delta {
                        continue; // heavy edges wait for settlement
                    }
                    let du = prev[u as usize];
                    if du.is_finite() && bucket_of(du) == b {
                        let nd = du + w;
                        if nd < best {
                            best = nd;
                        }
                    }
                }
                (best < prev[v]).then_some(best)
            });
            let mut changed = false;
            for (v, u) in updates.into_iter().enumerate() {
                if let Some(nd) = u {
                    dist[v] = nd;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Relax heavy edges out of the settled bucket, once.
        ledger.step(2 * g.num_edges() as u64 + n as u64);
        let prev = &dist;
        let updates: Vec<Option<Weight>> = prim::par_map_range(exec, n, |v| {
            let mut best = prev[v];
            for (u, w) in g.neighbors(v as VId) {
                if w < delta {
                    continue;
                }
                let du = prev[u as usize];
                if du.is_finite() && bucket_of(du) == b {
                    let nd = du + w;
                    if nd < best {
                        best = nd;
                    }
                }
            }
            (best < prev[v]).then_some(best)
        });
        for (v, u) in updates.into_iter().enumerate() {
            if let Some(nd) = u {
                dist[v] = nd;
            }
        }

        current_bucket = b + 1;
    }

    (
        DeltaSteppingResult {
            dist,
            buckets,
            light_rounds,
            ledger,
        },
        settled_early,
    )
}

/// A standard width heuristic: Δ = max weight / average degree, clamped to
/// the weight range.
pub fn default_delta(g: &Graph) -> Weight {
    let m = g.num_edges().max(1) as f64;
    let n = g.num_vertices().max(1) as f64;
    let avg_deg = (2.0 * m / n).max(1.0);
    let max_w = g.max_weight().unwrap_or(1.0);
    (max_w / avg_deg).max(g.min_weight().unwrap_or(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgraph::exact::dijkstra;
    use pgraph::gen;

    fn assert_matches_dijkstra(g: &Graph, delta: Weight) {
        let r = delta_stepping(g, 0, delta);
        let ex = dijkstra(g, 0).dist;
        #[allow(clippy::needless_range_loop)] // indexes several parallel arrays
        for v in 0..g.num_vertices() {
            assert!(
                (r.dist[v] - ex[v]).abs() < 1e-9 || (r.dist[v] == INF && ex[v] == INF),
                "v={v}: {} vs {}",
                r.dist[v],
                ex[v]
            );
        }
    }

    #[test]
    fn exact_on_random_graphs() {
        for seed in [1u64, 2, 3] {
            let g = gen::gnm_connected(80, 240, seed, 1.0, 9.0);
            for delta in [0.5, 2.0, 10.0] {
                assert_matches_dijkstra(&g, delta);
            }
        }
    }

    #[test]
    fn exact_on_path_and_grid() {
        assert_matches_dijkstra(&gen::path(60), 1.0);
        assert_matches_dijkstra(&gen::unit_grid(8, 12), 3.0);
        assert_matches_dijkstra(
            &gen::road_grid(8, 8, 3, 1.0, 7.0),
            default_delta(&gen::road_grid(8, 8, 3, 1.0, 7.0)),
        );
    }

    #[test]
    fn bucket_count_tracks_distance_range() {
        let g = gen::path(100); // diameter 99
        let r = delta_stepping(&g, 0, 10.0);
        assert!(r.buckets >= 10, "99/10 buckets at least");
        assert!(r.buckets <= 11);
    }

    #[test]
    fn disconnected_stays_infinite() {
        let g = Graph::from_edges(4, [(0, 1, 1.0)]).unwrap();
        let r = delta_stepping(&g, 0, 1.0);
        assert_eq!(r.dist[2], INF);
        assert_eq!(r.dist[3], INF);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        // Above PAR_THRESHOLD vertices: the relaxation rounds run chunked
        // on the pool and must stay bit-identical.
        let g = gen::gnm_connected(5000, 10_000, 11, 1.0, 9.0);
        let base = delta_stepping_on(&Executor::sequential(), &g, 0, 2.0);
        for threads in [2usize, 4, 8] {
            let r = delta_stepping_on(&Executor::shared(threads), &g, 0, 2.0);
            assert_eq!(r.buckets, base.buckets, "threads={threads}");
            assert_eq!(r.light_rounds, base.light_rounds);
            assert_eq!(r.ledger, base.ledger);
            for (x, y) in r.dist.iter().zip(&base.dist) {
                assert_eq!(x.to_bits(), y.to_bits(), "threads={threads}");
            }
        }
    }

    /// Settled-bucket early exit: bit-identical to the full run's target
    /// entry, on every graph/Δ/target combination tried.
    #[test]
    fn target_early_exit_bit_identical_to_full_run() {
        let exec = Executor::shared(2);
        for seed in [1u64, 7] {
            let g = gen::gnm_connected(90, 270, seed, 1.0, 9.0);
            for delta in [0.5, 2.0, 10.0] {
                let full = delta_stepping_on(&exec, &g, 0, delta);
                for target in [0u32, 3, 45, 89] {
                    let r = delta_stepping_to_on(&exec, &g, 0, target, delta);
                    assert_eq!(
                        r.dist.to_bits(),
                        full.dist[target as usize].to_bits(),
                        "seed={seed} delta={delta} target={target}"
                    );
                    assert!(r.buckets <= full.buckets);
                }
            }
        }
    }

    /// A nearby target on a long path stops after a few buckets, not
    /// diameter/Δ of them.
    #[test]
    fn target_early_exit_cuts_buckets_on_a_path() {
        let exec = Executor::shared(2);
        let g = gen::path(512);
        let full = delta_stepping_on(&exec, &g, 0, 1.0);
        let r = delta_stepping_to_on(&exec, &g, 0, 4, 1.0);
        assert_eq!(r.dist, 4.0);
        assert!(r.settled_early);
        assert!(
            r.buckets * 8 < full.buckets,
            "{} vs {}",
            r.buckets,
            full.buckets
        );
        // Unreachable target: no early settle, INF answer.
        let g2 = Graph::from_edges(4, [(0, 1, 1.0)]).unwrap();
        let r2 = delta_stepping_to_on(&exec, &g2, 0, 3, 1.0);
        assert_eq!(r2.dist, INF);
        assert!(!r2.settled_early);
    }

    #[test]
    fn depth_grows_with_diameter_unlike_hopset_queries() {
        // The point of E10: Δ-stepping's round count is Θ(diameter/Δ) on a
        // path, while the hopset query is a fixed β rounds.
        let short = delta_stepping(&gen::path(64), 0, 1.0);
        let long = delta_stepping(&gen::path(512), 0, 1.0);
        assert!(long.ledger.depth() > 4 * short.ledger.depth());
    }
}
