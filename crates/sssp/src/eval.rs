//! Stretch-measurement utilities: the hop-budget/stretch trade-off curves
//! of experiments E2/F2.
//!
//! The paper's eq. (2) prices the hopbound at `β = (…/ε)^{⌊log κρ⌋ +
//! ⌈(κ+1)/κρ⌉ − 1}` — a steep function of ε. The dual view, measured here,
//! is the *stretch achieved at a given hop budget*: sweeping the budget
//! reproduces the trade-off empirically (and shows where budgets below the
//! effective β cost stretch or even reachability, matching the hopset
//! lower-bound intuition of \[ABP17\]).

use crate::oracle::DistanceMatrix;
use pgraph::exact::{bellman_ford_hops, dijkstra};
use pgraph::{Graph, UnionView, VId, Weight, INF};

/// One point of the stretch-vs-hops curve.
#[derive(Clone, Copy, Debug)]
pub struct HopCurvePoint {
    /// The hop budget measured.
    pub hops: usize,
    /// Max observed stretch over reachable sampled pairs.
    pub max_stretch: f64,
    /// Mean observed stretch.
    pub mean_stretch: f64,
    /// Sampled pairs whose bounded distance was infinite.
    pub unreached: usize,
}

/// Measure stretch at several hop budgets from the given sources.
/// `overlay` is the hopset edge list (`[]` measures the bare graph).
pub fn stretch_vs_hops(
    g: &Graph,
    overlay: &[(VId, VId, Weight)],
    sources: &[VId],
    budgets: &[usize],
) -> Vec<HopCurvePoint> {
    let view = UnionView::with_extra(g, overlay);
    stretch_vs_hops_view(&view, sources, budgets)
}

/// Like [`stretch_vs_hops`], but over a pre-built `G ∪ H` view — the entry
/// point the owned [`crate::Oracle`] uses, so the overlay CSR is not
/// rebuilt per measurement. Exact references come from the view's base
/// graph.
pub fn stretch_vs_hops_view(
    view: &UnionView<'_>,
    sources: &[VId],
    budgets: &[usize],
) -> Vec<HopCurvePoint> {
    let g = view.base();
    // Exact baseline in a flat row-major DistanceMatrix — the query layer's
    // one distance-table layout (no nested Vec<Vec<Weight>>).
    let mut exact = DistanceMatrix::with_capacity(sources.len(), g.num_vertices());
    for &s in sources {
        exact.push_row(&dijkstra(g, s).dist);
    }
    budgets
        .iter()
        .map(|&hops| {
            let mut max_stretch: f64 = 1.0;
            let mut sum = 0.0;
            let mut cnt = 0usize;
            let mut unreached = 0usize;
            for (si, &s) in sources.iter().enumerate() {
                let approx = bellman_ford_hops(view, &[s], hops);
                #[allow(clippy::needless_range_loop)] // indexes several parallel arrays
                for v in 0..g.num_vertices() {
                    let e = exact.row(si)[v];
                    if e == 0.0 || e == INF {
                        continue;
                    }
                    if approx[v] == INF {
                        unreached += 1;
                        continue;
                    }
                    let r = approx[v] / e;
                    max_stretch = max_stretch.max(r);
                    sum += r;
                    cnt += 1;
                }
            }
            HopCurvePoint {
                hops,
                max_stretch,
                mean_stretch: if cnt > 0 { sum / cnt as f64 } else { 1.0 },
                unreached,
            }
        })
        .collect()
}

/// Deterministically sample `count` vertices spread over `[0, n)` (used to
/// pick experiment sources without RNG).
pub fn spread_sources(n: usize, count: usize) -> Vec<VId> {
    let count = count.min(n).max(1);
    (0..count)
        .map(|i| ((i * n) / count + i.min(n - 1) % (n / count).max(1)) as VId % n as VId)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hopset::{build_hopset, BuildOptions, HopsetParams, ParamMode};
    use pgraph::gen;

    #[test]
    fn curve_monotone_in_budget() {
        let g = gen::path(128);
        let p = HopsetParams::new(
            128,
            0.25,
            4,
            0.3,
            ParamMode::Practical,
            g.aspect_ratio_bound(),
            None,
        )
        .unwrap();
        let built = build_hopset(&g, &p, BuildOptions::default());
        let overlay = built.overlay();
        let pts = stretch_vs_hops(&g, &overlay, &[0], &[4, 8, 16, 32, 64, 128]);
        // Unreached counts and max stretch are non-increasing in budget.
        for w in pts.windows(2) {
            assert!(w[1].unreached <= w[0].unreached);
        }
        // At n hops the answer is exact.
        let last = pts.last().unwrap();
        assert_eq!(last.unreached, 0);
        assert!(last.max_stretch <= 1.0 + 1e-9);
    }

    #[test]
    fn bare_graph_curve_shows_hop_limitation() {
        let g = gen::path(64);
        let pts = stretch_vs_hops(&g, &[], &[8, 63], &[8, 63]);
        // With budget 8 from vertex 8, some pairs unreachable from source 8?
        // Source list here is budgets misuse guard: sources are vertices.
        assert_eq!(pts.len(), 2);
        assert!(pts[0].unreached > 0, "8 hops cannot span a 64-path");
        assert_eq!(pts[1].unreached, 0);
    }

    #[test]
    fn spread_sources_in_range_and_distinct_enough() {
        let s = spread_sources(100, 5);
        assert_eq!(s.len(), 5);
        assert!(s.iter().all(|&v| (v as usize) < 100));
        let s1 = spread_sources(3, 10);
        assert!(s1.len() <= 3);
    }
}
