//! Approximate single- and multi-source shortest distances (Theorem 3.8) —
//! the **legacy borrowed engine**.
//!
//! Once a `(1+ε, β)`-hopset `H` is built, a `β`-round Bellman–Ford over
//! `G ∪ H` answers `(1+ε)`-approximate distances from any source; `|S|`
//! explorations run in parallel for the multi-source problem (aMSSD),
//! adding `O(|S|)` processors per vertex/edge and no extra depth.
//!
//! New code should use the owned, thread-safe facade instead:
//! [`crate::Oracle::builder`]. This engine borrows the graph with a
//! lifetime (so it cannot sit behind an `Arc` and serve concurrent
//! traffic) and is kept as a thin deprecated shim for one release.

use crate::oracle::DistanceMatrix;
// Re-exported at its pre-0.2 path: `MultiSourceResult` now lives in
// `crate::oracle`, but legacy imports keep compiling for one release.
pub use crate::oracle::MultiSourceResult;
use hopset::{BuildOptions, BuiltHopset, HopsetParams, ParamError, ParamMode};
use pgraph::{Graph, UnionView, VId, Weight};
use pram::{bford, Executor, Ledger};

/// A built query engine: the graph plus its hopset, borrowed for `'g`.
///
/// Superseded by [`crate::Oracle`] (owned, `Send + Sync`, one
/// configuration path); see the constructors' deprecation notes for the
/// exact replacements.
pub struct ApproxShortestPaths<'g> {
    g: &'g Graph,
    built: BuiltHopset,
    /// The `G ∪ H` union CSR, built once at construction and reused by
    /// every query (formerly rebuilt per call).
    view: UnionView<'g>,
    /// The process-default executor, captured once at construction (like
    /// the owned `Oracle`) — queries never touch global resolution state.
    exec: Executor,
}

impl<'g> ApproxShortestPaths<'g> {
    /// Build with practical defaults (`ρ = 1/κ`, the setting of the SSSP
    /// corollary after Theorem 3.8). `eps ∈ (0,1)`, `kappa ≥ 2`.
    #[deprecated(
        since = "0.2.0",
        note = "use sssp::Oracle::builder(graph).eps(eps).kappa(kappa).build()"
    )]
    pub fn build(g: &'g Graph, eps: f64, kappa: usize) -> Result<Self, ParamError> {
        let params =
            HopsetParams::practical(g.num_vertices().max(2), eps, kappa, g.aspect_ratio_bound())?;
        Ok(Self::from_params_inner(g, &params))
    }

    /// Build with explicit parameters (any mode).
    #[deprecated(
        since = "0.2.0",
        note = "use sssp::Oracle::builder(graph).eps(..).kappa(..).rho(..).mode(..).hop_cap(..).build()"
    )]
    pub fn with_params(
        g: &'g Graph,
        eps: f64,
        kappa: usize,
        rho: f64,
        mode: ParamMode,
        hop_cap: Option<usize>,
    ) -> Result<Self, ParamError> {
        let params = HopsetParams::new(
            g.num_vertices().max(2),
            eps,
            kappa,
            rho,
            mode,
            g.aspect_ratio_bound(),
            hop_cap,
        )?;
        Ok(Self::from_params_inner(g, &params))
    }

    /// Build from pre-derived parameters.
    #[deprecated(
        since = "0.2.0",
        note = "use sssp::Oracle::builder — it derives parameters from one configuration path"
    )]
    pub fn from_params(g: &'g Graph, params: &HopsetParams) -> Self {
        Self::from_params_inner(g, params)
    }

    fn from_params_inner(g: &'g Graph, params: &HopsetParams) -> Self {
        // xlint: allow(ambient-threads, legacy engine captures the process executor once at construction)
        let exec = Executor::current();
        let built = hopset::build_hopset_on(&exec, g, params, BuildOptions::default());
        let sl = built.hopset.all_slice();
        let view = UnionView::with_overlay_columns(g, sl.us(), sl.vs(), sl.ws());
        ApproxShortestPaths {
            g,
            built,
            view,
            exec,
        }
    }

    /// The underlying hopset and construction report.
    pub fn built(&self) -> &BuiltHopset {
        &self.built
    }

    /// The graph.
    pub fn graph(&self) -> &Graph {
        self.g
    }

    /// The hop budget queries run with.
    pub fn query_hops(&self) -> usize {
        self.built.params.query_hops
    }

    /// `(1+ε)`-approximate distances from one source (aSSSD): a `β`-round
    /// Bellman–Ford over `G ∪ H`.
    pub fn distances_from(&self, source: VId) -> Vec<Weight> {
        self.distances_from_with_ledger(source).0
    }

    /// Same, returning the query's PRAM cost.
    pub fn distances_from_with_ledger(&self, source: VId) -> (Vec<Weight>, Ledger) {
        let mut ledger = Ledger::new();
        let r = bford::bellman_ford(
            &self.exec,
            &self.view,
            &[source],
            self.query_hops(),
            &mut ledger,
        );
        (r.dist, ledger)
    }

    /// `(1+ε)`-approximate distances for all pairs in `S × V` (aMSSD,
    /// Theorem 3.8): `|S|` independent `β`-round explorations, charged as
    /// parallel on the ledger (work adds, depth does not). Same execution
    /// policy as `Oracle::distances_multi`: on graphs below
    /// `PAR_THRESHOLD` vertices the pool fans out across sources
    /// (per-round primitives would stay sequential anyway); on larger
    /// graphs each exploration's rounds are data-parallel instead.
    pub fn distances_multi(&self, sources: &[VId]) -> MultiSourceResult {
        use pram::pool;
        let hops = self.query_hops();
        let exec = &self.exec;
        let explore = |s: VId| {
            let mut ledger = Ledger::new();
            let r = bford::bellman_ford(exec, &self.view, &[s], hops, &mut ledger);
            (r.dist, ledger)
        };
        let per_source: Vec<(Vec<Weight>, Ledger)> = if self.g.num_vertices() < pool::PAR_THRESHOLD
            && sources.len() > 1
            && exec.effective_threads() > 1
        {
            let bounds = exec.task_bounds(sources.len());
            exec.run_chunks(&bounds, |r| {
                r.map(|i| explore(sources[i])).collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect()
        } else {
            sources.iter().map(|&s| explore(s)).collect()
        };
        let mut ledger = Ledger::new();
        let mut dist = DistanceMatrix::with_capacity(sources.len(), self.g.num_vertices());
        for (row, l) in &per_source {
            ledger.absorb_parallel(l);
            dist.push_row(row);
        }
        MultiSourceResult {
            dist,
            sources: sources.to_vec(),
            ledger,
        }
    }

    /// Nearest-source distances (a single multi-source exploration): the
    /// "forest" flavor of aMSSD used e.g. for facility-location style
    /// queries.
    pub fn distances_to_nearest(&self, sources: &[VId]) -> Vec<Weight> {
        let mut ledger = Ledger::new();
        bford::bellman_ford(
            &self.exec,
            &self.view,
            sources,
            self.query_hops(),
            &mut ledger,
        )
        .dist
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)]
    use super::*;
    use pgraph::exact::dijkstra;
    use pgraph::{gen, INF};

    #[test]
    fn sssd_respects_stretch() {
        let g = gen::gnm_connected(120, 360, 6, 1.0, 9.0);
        let asp = ApproxShortestPaths::build(&g, 0.25, 4).unwrap();
        let d = asp.distances_from(17);
        let exact = dijkstra(&g, 17).dist;
        for v in 0..120 {
            assert!(d[v] >= exact[v] - 1e-6 * exact[v].max(1.0));
            assert!(d[v] <= 1.25 * exact[v] + 1e-9);
        }
    }

    #[test]
    fn multi_source_matches_single_source() {
        let g = gen::road_grid(10, 10, 4, 1.0, 5.0);
        let asp = ApproxShortestPaths::build(&g, 0.25, 4).unwrap();
        let sources = vec![0u32, 37, 99];
        let multi = asp.distances_multi(&sources);
        for (i, &s) in sources.iter().enumerate() {
            let single = asp.distances_from(s);
            assert_eq!(multi.dist.row(i), &single[..], "source {s}");
        }
        // Depth of the parallel batch equals the max single depth.
        let (_, l) = asp.distances_from_with_ledger(0);
        assert!(multi.ledger.depth() >= l.depth());
        assert!(multi.ledger.work() >= 3 * l.work() / 2);
    }

    #[test]
    fn nearest_source_semantics() {
        let g = gen::path(30);
        let asp = ApproxShortestPaths::build(&g, 0.25, 4).unwrap();
        let d = asp.distances_to_nearest(&[0, 29]);
        assert_eq!(d[0], 0.0);
        assert_eq!(d[29], 0.0);
        assert!(d[15] <= 15.0 * 1.25 + 1e-9);
        assert!(d[15] >= 14.0 - 1e-9);
    }

    #[test]
    fn disconnected_vertices_stay_infinite() {
        let g = Graph::from_edges(5, [(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let asp = ApproxShortestPaths::build(&g, 0.25, 4).unwrap();
        let d = asp.distances_from(0);
        assert_eq!(d[3], INF);
        assert_eq!(d[4], INF);
        assert!(d[2].is_finite());
    }
}
