//! The serving-layer source cache: a bounded, deterministic LRU over
//! distance rows.
//!
//! "Build once, answer many" only pays off if *answering* is cheap, and
//! real query traffic is skewed: a handful of hot sources receive most of
//! the load. [`CachedOracle`] wraps any [`DistanceOracle`] and keeps the
//! rows of the most recently used sources behind `Arc`s, so a hit is one
//! mutex-protected scan of a tiny table plus an `Arc` clone — no
//! exploration at all — while misses delegate to the wrapped backend and
//! fill the cache.
//!
//! Determinism is part of the contract (DESIGN.md §9):
//!
//! * **answers** — a cached row is the backend's row, stored verbatim
//!   (including its query [`Ledger`]); hits are bit-identical to cold
//!   queries because nothing is recomputed;
//! * **eviction** — strict LRU over a bounded table. The hit/miss/evict
//!   trace is a pure function of the request sequence and the capacity;
//!   concurrency changes only the interleaving of requests, never the
//!   answer any request receives.
//!
//! ```
//! use pgraph::gen;
//! use sssp::{CachedOracle, DistanceOracle, Oracle};
//!
//! let g = gen::road_grid(8, 8, 3, 1.0, 6.0);
//! let oracle = Oracle::builder(g).eps(0.25).kappa(4).build().unwrap();
//! let served = CachedOracle::new(oracle, 4).unwrap();
//! let cold = served.distances_from(0).unwrap(); // miss: fills the cache
//! let warm = served.distances_from(0).unwrap(); // hit: the cached row
//! assert_eq!(cold, warm);
//! assert_eq!(served.stats().hits, 1);
//! ```

use crate::oracle::{check_source, DistanceOracle, MultiSourceResult, SsspError};
use pgraph::{VId, Weight};
use pram::Ledger;
use std::sync::{Arc, Mutex};

/// One cached source row: the backend's distances **and** its query
/// ledger, stored verbatim so a hit reproduces the cold answer exactly
/// (including batch cost accounting through
/// [`DistanceOracle::distances_multi`]).
#[derive(Clone, Debug)]
pub struct CachedRow {
    dist: Vec<Weight>,
    ledger: Ledger,
}

impl CachedRow {
    /// The cached distance row.
    #[inline]
    pub fn dist(&self) -> &[Weight] {
        &self.dist
    }

    /// The query ledger of the exploration that produced the row.
    #[inline]
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }
}

/// A point-in-time snapshot of the cache counters
/// ([`CachedOracle::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from a cached row.
    pub hits: u64,
    /// Requests that had to consult the wrapped backend.
    pub misses: u64,
    /// Rows evicted to make room (strict LRU order).
    pub evictions: u64,
    /// Rows currently resident.
    pub len: usize,
    /// The configured bound.
    pub capacity: usize,
}

/// Everything the mutex guards: the LRU table (most recently used at the
/// back; the table is deliberately tiny, so linear scans beat any pointer
/// structure) plus the counters.
#[derive(Debug)]
struct CacheState {
    entries: Vec<(VId, Arc<CachedRow>)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A bounded, deterministic LRU source cache over any [`DistanceOracle`].
///
/// `CachedOracle` is `Send + Sync` whenever the wrapped backend is: rows
/// are `Arc`-swapped (readers keep their `Arc` across evictions; the lock
/// is never held during an exploration), so an `Arc<CachedOracle<_>>` can
/// serve concurrent mixed hit/miss traffic. See the module docs for the
/// determinism contract.
#[derive(Debug)]
pub struct CachedOracle<O> {
    inner: O,
    capacity: usize,
    state: Mutex<CacheState>,
}

impl<O: DistanceOracle> CachedOracle<O> {
    /// Wrap `inner` with a cache holding at most `capacity ≥ 1` rows.
    pub fn new(inner: O, capacity: usize) -> Result<Self, SsspError> {
        if capacity == 0 {
            return Err(SsspError::Config(
                "source cache capacity must be at least 1 row".into(),
            ));
        }
        Ok(CachedOracle {
            inner,
            capacity,
            state: Mutex::new(CacheState {
                entries: Vec::with_capacity(capacity),
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        })
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// The configured row bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Snapshot the hit/miss/eviction counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        let s = self.state.lock().unwrap();
        CacheStats {
            hits: s.hits,
            misses: s.misses,
            evictions: s.evictions,
            len: s.entries.len(),
            capacity: self.capacity,
        }
    }

    /// Drop every cached row (counters are kept — they describe the whole
    /// lifetime of the cache).
    pub fn clear(&self) {
        self.state.lock().unwrap().entries.clear();
    }

    /// The serving entry point: the row for `source`, shared, plus whether
    /// it was a cache hit. Misses compute **outside** the lock (concurrent
    /// requests for other sources proceed) and then fill the cache,
    /// evicting the least recently used row if the table is full.
    pub fn row(&self, source: VId) -> Result<(Arc<CachedRow>, bool), SsspError> {
        if let Some(row) = self.lookup(source) {
            return Ok((row, true));
        }
        let (dist, ledger) = self.inner.distances_from_with_ledger(source)?;
        Ok((self.insert(source, CachedRow { dist, ledger }), false))
    }

    /// Hit path: scan, refresh recency, count. `None` counts a miss.
    fn lookup(&self, source: VId) -> Option<Arc<CachedRow>> {
        let mut s = self.state.lock().unwrap();
        if let Some(i) = s.entries.iter().position(|(v, _)| *v == source) {
            let entry = s.entries.remove(i);
            let row = Arc::clone(&entry.1);
            s.entries.push(entry);
            s.hits += 1;
            Some(row)
        } else {
            s.misses += 1;
            None
        }
    }

    /// Fill path after a miss computed outside the lock. If a concurrent
    /// miss for the same source filled the table first, its row wins (rows
    /// for one source are bit-identical by the determinism contract, so
    /// the choice is unobservable in answers) and only its recency is
    /// refreshed.
    fn insert(&self, source: VId, row: CachedRow) -> Arc<CachedRow> {
        let mut s = self.state.lock().unwrap();
        if let Some(i) = s.entries.iter().position(|(v, _)| *v == source) {
            let entry = s.entries.remove(i);
            let row = Arc::clone(&entry.1);
            s.entries.push(entry);
            return row;
        }
        if s.entries.len() == self.capacity {
            s.entries.remove(0); // least recently used; readers keep their Arc
            s.evictions += 1;
        }
        let row = Arc::new(row);
        s.entries.push((source, Arc::clone(&row)));
        row
    }
}

impl<O: DistanceOracle> DistanceOracle for CachedOracle<O> {
    fn name(&self) -> &'static str {
        "cached"
    }

    fn num_vertices(&self) -> usize {
        self.inner.num_vertices()
    }

    fn stretch_bound(&self) -> f64 {
        self.inner.stretch_bound()
    }

    fn cost(&self) -> &Ledger {
        self.inner.cost()
    }

    fn distances_from_with_ledger(&self, source: VId) -> Result<(Vec<Weight>, Ledger), SsspError> {
        let (row, _hit) = self.row(source)?;
        Ok((row.dist.clone(), row.ledger.clone()))
    }

    /// Mixed hit/miss batches go row by row through the cache (hits are
    /// free, misses fill), merged in source order like every other
    /// backend.
    fn distances_multi(&self, sources: &[VId]) -> Result<MultiSourceResult, SsspError> {
        let n = self.num_vertices();
        let mut dist = crate::DistanceMatrix::with_capacity(sources.len(), n);
        let mut ledger = Ledger::new();
        for &s in sources {
            let (row, _hit) = self.row(s)?;
            ledger.absorb_parallel(&row.ledger);
            dist.push_row(&row.dist);
        }
        Ok(MultiSourceResult {
            dist,
            sources: sources.to_vec(),
            ledger,
        })
    }

    /// Nearest-source queries are not per-source row queries — delegate to
    /// the backend (the hopset engine answers them in **one** multi-source
    /// exploration) without touching the cache.
    fn distances_to_nearest(&self, sources: &[VId]) -> Result<Vec<Weight>, SsspError> {
        self.inner.distances_to_nearest(sources)
    }

    /// Point-to-point: a resident row for `u` answers immediately (and
    /// refreshes its recency); otherwise delegate to the backend's
    /// early-exit `distance` **without** filling the cache — a p2p miss
    /// never pays for (or evicts in favor of) a full row it did not
    /// compute. Both paths are bit-identical to `distances_from(u)[v]` by
    /// the serving contract.
    fn distance(&self, u: VId, v: VId) -> Result<Weight, SsspError> {
        check_source(self.num_vertices(), v)?;
        if let Some(row) = self.lookup(u) {
            return Ok(row.dist[v as usize]);
        }
        self.inner.distance(u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Oracle;
    use pgraph::gen;

    fn served() -> CachedOracle<Oracle> {
        let g = gen::gnm_connected(100, 300, 7, 1.0, 8.0);
        let oracle = Oracle::builder(g).eps(0.25).kappa(4).build().unwrap();
        CachedOracle::new(oracle, 2).unwrap()
    }

    #[test]
    fn capacity_zero_is_a_config_error() {
        let g = gen::path(8);
        let oracle = Oracle::builder(g).build().unwrap();
        assert!(matches!(
            CachedOracle::new(oracle, 0),
            Err(SsspError::Config(_))
        ));
    }

    #[test]
    fn hits_are_bit_identical_and_counted() {
        let c = served();
        let cold = c.distances_from(5).unwrap();
        let reference = c.inner().distances_from(5).unwrap();
        let warm = c.distances_from(5).unwrap();
        for ((a, b), r) in cold.iter().zip(&warm).zip(&reference) {
            assert_eq!(a.to_bits(), b.to_bits());
            assert_eq!(a.to_bits(), r.to_bits());
        }
        let st = c.stats();
        assert_eq!((st.hits, st.misses, st.len), (1, 1, 1));
    }

    #[test]
    fn lru_eviction_is_strict_and_counted() {
        let c = served(); // capacity 2
        assert!(!c.row(0).unwrap().1);
        assert!(!c.row(1).unwrap().1);
        assert!(c.row(0).unwrap().1); // refreshes 0's recency: LRU is now 1
        assert!(!c.row(2).unwrap().1); // evicts 1
        assert!(c.row(0).unwrap().1); // 0 survived
        assert!(!c.row(1).unwrap().1); // 1 was evicted (evicts 2)
        let st = c.stats();
        assert_eq!(st.evictions, 2);
        assert_eq!(st.len, 2);
        assert_eq!(st.capacity, 2);
    }

    #[test]
    fn p2p_hits_read_the_row_and_misses_do_not_fill() {
        let c = served();
        let reference = c.inner().distances_from(3).unwrap();
        // Miss path: no row resident, delegates, does not fill.
        let d = c.distance(3, 40).unwrap();
        assert_eq!(d.to_bits(), reference[40].to_bits());
        assert_eq!(c.stats().len, 0);
        // Fill, then the p2p answer comes from the row (hit counted).
        c.row(3).unwrap();
        let hits_before = c.stats().hits;
        let d2 = c.distance(3, 40).unwrap();
        assert_eq!(d2.to_bits(), reference[40].to_bits());
        assert_eq!(c.stats().hits, hits_before + 1);
    }

    #[test]
    fn ledgers_are_cached_with_rows() {
        let c = served();
        let (_, cold_ledger) = c.distances_from_with_ledger(9).unwrap();
        let (_, warm_ledger) = c.distances_from_with_ledger(9).unwrap();
        assert_eq!(cold_ledger, warm_ledger);
        // Batches over hits reproduce cold batch ledgers exactly.
        let warm_batch = c.distances_multi(&[9]).unwrap();
        assert_eq!(warm_batch.ledger, cold_ledger);
    }

    #[test]
    fn invalid_sources_do_not_poison_the_cache() {
        let c = served();
        assert!(matches!(
            c.row(999),
            Err(SsspError::InvalidSource { source: 999, .. })
        ));
        assert!(matches!(
            c.distance(0, 999),
            Err(SsspError::InvalidSource { .. })
        ));
        // The failed miss was counted, but nothing was inserted.
        let st = c.stats();
        assert_eq!(st.len, 0);
        assert_eq!(st.misses, 1);
    }
}
