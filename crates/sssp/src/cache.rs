//! The serving-layer source cache: a bounded, deterministic LRU over
//! distance rows, with an optional landmark plane and admission control.
//!
//! "Build once, answer many" only pays off if *answering* is cheap, and
//! real query traffic is skewed: a handful of hot sources receive most of
//! the load. [`CachedOracle`] wraps any [`DistanceOracle`] and keeps the
//! rows of the most recently used sources behind `Arc`s, so a hit is one
//! mutex-protected scan of a tiny table plus an `Arc` clone — no
//! exploration at all — while misses delegate to the wrapped backend and
//! fill the cache.
//!
//! Three serving policies layer on top (configured via [`CacheConfig`]):
//!
//! * **fill policy** ([`FillPolicy`]) — what a point-to-point *miss*
//!   does: nothing (the PR 6 default), consult the landmark plane
//!   ([`crate::LandmarkPlane`]) for an `O(L)` bounded-stretch answer, or
//!   additionally promote a source's full row after `k` fallback
//!   explorations;
//! * **admission control** ([`CacheConfig::admission`]) — a bounded
//!   in-flight-exploration gate: a miss storm cannot pile unbounded
//!   explorations onto the executor; excess requests queue or are
//!   rejected with the typed [`SsspError::Overloaded`];
//! * **landmark answers** — the one deliberate exception to the
//!   bit-identity rule of DESIGN.md §9: a certified landmark answer is a
//!   documented `(1+δ)`-approximation of the exact distance instead of
//!   the backend's number, in exchange for skipping the exploration
//!   entirely.
//!
//! Determinism is part of the contract (DESIGN.md §9):
//!
//! * **answers** — a cached row is the backend's row, stored verbatim
//!   (including its query [`Ledger`]); hits are bit-identical to cold
//!   queries because nothing is recomputed; landmark answers are pure
//!   functions of (graph, backend config, landmark config);
//! * **eviction / counters** — strict LRU over a bounded table. The
//!   hit/miss/evict trace — and the landmark/fallback/promotion/rejection
//!   counters — are pure functions of the (serialized) request sequence
//!   and the configuration; concurrency changes only the interleaving of
//!   requests, never the answer any request receives.
//!
//! ```
//! use pgraph::gen;
//! use sssp::{CachedOracle, DistanceOracle, Oracle};
//!
//! let g = gen::road_grid(8, 8, 3, 1.0, 6.0);
//! let oracle = Oracle::builder(g).eps(0.25).kappa(4).build().unwrap();
//! let served = CachedOracle::new(oracle, 4).unwrap();
//! let cold = served.distances_from(0).unwrap(); // miss: fills the cache
//! let warm = served.distances_from(0).unwrap(); // hit: the cached row
//! assert_eq!(cold, warm);
//! assert_eq!(served.stats().hits, 1);
//! ```

use crate::landmark::{LandmarkConfig, LandmarkPlane};
use crate::oracle::{check_source, DistanceOracle, MultiSourceResult, SsspError};
use pgraph::{VId, Weight};
use pram::Ledger;
use std::sync::{Arc, Condvar, Mutex};

/// One cached source row: the backend's distances **and** its query
/// ledger, stored verbatim so a hit reproduces the cold answer exactly
/// (including batch cost accounting through
/// [`DistanceOracle::distances_multi`]).
#[derive(Clone, Debug)]
pub struct CachedRow {
    dist: Vec<Weight>,
    ledger: Ledger,
}

impl CachedRow {
    /// The cached distance row.
    #[inline]
    pub fn dist(&self) -> &[Weight] {
        &self.dist
    }

    /// The query ledger of the exploration that produced the row.
    #[inline]
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }
}

/// What a point-to-point miss (no resident row for the source) is
/// allowed to do. The PR 6 behavior — delegate to the backend's
/// early-exit exploration, never fill — is the default.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FillPolicy {
    /// Delegate every p2p miss to the backend's early-exit exploration;
    /// never consult the landmark plane, never fill the row cache (a
    /// single pair does not justify a full-row exploration).
    #[default]
    NeverFill,
    /// Consult the landmark plane first ([`LandmarkPlane::certify`]);
    /// certified pairs answer in `O(L)` with documented `(1+δ)` stretch,
    /// the rest fall through to the backend. Never fills the row cache.
    /// Requires a landmark plane in the [`CacheConfig`].
    LandmarkOnly,
    /// [`FillPolicy::LandmarkOnly`] when a plane is configured, plus row
    /// promotion: after `k ≥ 1` fallback explorations for the same
    /// source, the next fallback computes and caches the source's full
    /// row instead (subsequent p2p queries on it become cache hits).
    PromoteAfterMisses(u32),
}

/// The admission gate's sizing and overflow behavior
/// ([`CacheConfig::admission`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum backend explorations in flight at once (`≥ 1`). Cache
    /// hits and landmark answers never consume a slot.
    pub max_inflight: usize,
    /// What an over-capacity request does: `true` queues (blocks until a
    /// slot frees — backpressure), `false` rejects immediately with
    /// [`SsspError::Overloaded`] (load shedding).
    pub queue: bool,
}

/// Fluent configuration for [`CachedOracle::with_config`].
///
/// ```
/// use sssp::{CacheConfig, FillPolicy, LandmarkConfig};
///
/// let cfg = CacheConfig::new(8)
///     .policy(FillPolicy::LandmarkOnly)
///     .landmarks(LandmarkConfig::new(16, 1.0))
///     .admission(4, false); // reject beyond 4 in-flight explorations
/// assert_eq!(cfg.capacity(), 8);
/// ```
#[derive(Clone, Debug)]
pub struct CacheConfig {
    capacity: usize,
    policy: FillPolicy,
    landmarks: Option<LandmarkSpec>,
    admission: Option<AdmissionConfig>,
}

/// Either build a plane at attach time or reuse one already built (the
/// open-loop harness shares one plane across many cache instances).
#[derive(Clone, Debug)]
enum LandmarkSpec {
    Build(LandmarkConfig),
    Prebuilt(Arc<LandmarkPlane>),
}

impl CacheConfig {
    /// A config with `capacity` row slots and every other knob at its
    /// default: [`FillPolicy::NeverFill`], no landmarks, no admission
    /// gate — exactly [`CachedOracle::new`].
    pub fn new(capacity: usize) -> Self {
        CacheConfig {
            capacity,
            policy: FillPolicy::default(),
            landmarks: None,
            admission: None,
        }
    }

    /// Set the point-to-point miss policy.
    pub fn policy(mut self, policy: FillPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Build a landmark plane at attach time (one row exploration per
    /// landmark, plus the seed row).
    pub fn landmarks(mut self, cfg: LandmarkConfig) -> Self {
        self.landmarks = Some(LandmarkSpec::Build(cfg));
        self
    }

    /// Reuse an already-built landmark plane (must match the backend's
    /// vertex count; validated at attach).
    pub fn landmark_plane(mut self, plane: Arc<LandmarkPlane>) -> Self {
        self.landmarks = Some(LandmarkSpec::Prebuilt(plane));
        self
    }

    /// Bound in-flight backend explorations to `max_inflight`; overflow
    /// queues (`queue = true`) or rejects with [`SsspError::Overloaded`].
    pub fn admission(mut self, max_inflight: usize, queue: bool) -> Self {
        self.admission = Some(AdmissionConfig {
            max_inflight,
            queue,
        });
        self
    }

    /// The configured row-slot bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// A point-in-time snapshot of the cache counters
/// ([`CachedOracle::stats`]). Every counter is a pure function of the
/// serialized request sequence and the configuration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from a cached row.
    pub hits: u64,
    /// Requests that had to go past the row table (row misses fill;
    /// p2p misses proceed per the fill policy).
    pub misses: u64,
    /// Rows evicted to make room (strict LRU order).
    pub evictions: u64,
    /// p2p misses answered by the landmark plane (`O(L)`, `(1+δ)`
    /// stretch, no exploration).
    pub landmark_answers: u64,
    /// p2p misses that fell through to a backend exploration (including
    /// the ones that promoted a row).
    pub fallbacks: u64,
    /// Requests rejected by the admission gate ([`SsspError::Overloaded`]).
    pub rejections: u64,
    /// Full rows computed and cached by
    /// [`FillPolicy::PromoteAfterMisses`].
    pub promotions: u64,
    /// Rows currently resident.
    pub len: usize,
    /// The configured bound.
    pub capacity: usize,
}

/// Everything the mutex guards: the LRU table (most recently used at the
/// back; the table is deliberately tiny, so linear scans beat any pointer
/// structure) plus the counters and the promotion tracker.
#[derive(Debug)]
struct CacheState {
    entries: Vec<(VId, Arc<CachedRow>)>,
    hits: u64,
    misses: u64,
    evictions: u64,
    landmark_answers: u64,
    fallbacks: u64,
    rejections: u64,
    promotions: u64,
    /// Per-source fallback counts for [`FillPolicy::PromoteAfterMisses`],
    /// FIFO-bounded at [`CachedOracle::tracker_cap`] (forgetting a source
    /// under pressure only delays its promotion — still a pure function
    /// of the request sequence).
    miss_counts: Vec<(VId, u32)>,
}

/// The admission gate: a counting semaphore over backend explorations.
/// No clocks, no fairness heuristics — admission is a pure function of
/// the number of explorations currently in flight.
#[derive(Debug)]
struct Gate {
    cfg: AdmissionConfig,
    inflight: Mutex<usize>,
    freed: Condvar,
}

/// RAII slot: dropping releases the exploration slot and wakes one
/// queued waiter.
struct GatePermit<'a>(&'a Gate);

impl Drop for GatePermit<'_> {
    fn drop(&mut self) {
        let mut n = self.0.inflight.lock().unwrap();
        *n -= 1;
        self.0.freed.notify_one();
    }
}

impl Gate {
    /// Acquire a slot: queue (block) or reject per config. `Err` carries
    /// the observed in-flight count.
    fn admit(&self) -> Result<GatePermit<'_>, usize> {
        let mut n = self.inflight.lock().unwrap();
        if *n >= self.cfg.max_inflight {
            if !self.cfg.queue {
                return Err(*n);
            }
            while *n >= self.cfg.max_inflight {
                n = self.freed.wait(n).unwrap();
            }
        }
        *n += 1;
        Ok(GatePermit(self))
    }
}

/// A bounded, deterministic LRU source cache over any [`DistanceOracle`],
/// with optional landmark answers and admission control (module docs).
///
/// `CachedOracle` is `Send + Sync` whenever the wrapped backend is: rows
/// are `Arc`-swapped (readers keep their `Arc` across evictions; the lock
/// is never held during an exploration), so an `Arc<CachedOracle<_>>` can
/// serve concurrent mixed hit/miss traffic. See the module docs for the
/// determinism contract.
#[derive(Debug)]
pub struct CachedOracle<O> {
    inner: O,
    capacity: usize,
    policy: FillPolicy,
    plane: Option<Arc<LandmarkPlane>>,
    gate: Option<Gate>,
    state: Mutex<CacheState>,
}

impl<O: DistanceOracle> CachedOracle<O> {
    /// Wrap `inner` with a cache holding at most `capacity ≥ 1` rows and
    /// every serving knob at its PR 6 default (no landmarks, no admission
    /// gate, [`FillPolicy::NeverFill`]).
    pub fn new(inner: O, capacity: usize) -> Result<Self, SsspError> {
        Self::with_config(inner, CacheConfig::new(capacity))
    }

    /// Wrap `inner` per `cfg`: validate the combination, build (or adopt)
    /// the landmark plane, and install the admission gate.
    pub fn with_config(inner: O, cfg: CacheConfig) -> Result<Self, SsspError> {
        if cfg.capacity == 0 {
            return Err(SsspError::Config(
                "source cache capacity must be at least 1 row".into(),
            ));
        }
        if let Some(a) = &cfg.admission {
            if a.max_inflight == 0 {
                return Err(SsspError::Config(
                    "admission gate capacity must be at least 1 in-flight exploration".into(),
                ));
            }
        }
        let plane = match cfg.landmarks {
            None => {
                if matches!(cfg.policy, FillPolicy::LandmarkOnly) {
                    return Err(SsspError::Config(
                        "FillPolicy::LandmarkOnly requires a landmark plane \
                         (CacheConfig::landmarks or ::landmark_plane)"
                            .into(),
                    ));
                }
                None
            }
            Some(LandmarkSpec::Build(lcfg)) => Some(Arc::new(LandmarkPlane::build(&inner, &lcfg)?)),
            Some(LandmarkSpec::Prebuilt(p)) => {
                if p.num_vertices() != inner.num_vertices() {
                    return Err(SsspError::Config(format!(
                        "landmark plane covers {} vertices but the backend has {}",
                        p.num_vertices(),
                        inner.num_vertices()
                    )));
                }
                Some(p)
            }
        };
        if let FillPolicy::PromoteAfterMisses(0) = cfg.policy {
            return Err(SsspError::Config(
                "PromoteAfterMisses threshold must be at least 1".into(),
            ));
        }
        Ok(CachedOracle {
            inner,
            capacity: cfg.capacity,
            policy: cfg.policy,
            plane,
            gate: cfg.admission.map(|a| Gate {
                cfg: a,
                inflight: Mutex::new(0),
                freed: Condvar::new(),
            }),
            state: Mutex::new(CacheState {
                entries: Vec::with_capacity(cfg.capacity),
                hits: 0,
                misses: 0,
                evictions: 0,
                landmark_answers: 0,
                fallbacks: 0,
                rejections: 0,
                promotions: 0,
                miss_counts: Vec::new(),
            }),
        })
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// The configured row bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The point-to-point miss policy in effect.
    pub fn policy(&self) -> FillPolicy {
        self.policy
    }

    /// The landmark plane, if one is attached.
    pub fn landmark_plane(&self) -> Option<&Arc<LandmarkPlane>> {
        self.plane.as_ref()
    }

    /// The admission gate's configuration, if one is installed.
    pub fn admission(&self) -> Option<AdmissionConfig> {
        self.gate.as_ref().map(|g| g.cfg)
    }

    /// Promotion-tracker bound: forgetting the coldest tracked source
    /// under pressure keeps the tracker `O(capacity)` without breaking
    /// determinism (FIFO, request-sequence-driven).
    fn tracker_cap(&self) -> usize {
        (8 * self.capacity).max(64)
    }

    /// Snapshot the counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        let s = self.state.lock().unwrap();
        CacheStats {
            hits: s.hits,
            misses: s.misses,
            evictions: s.evictions,
            landmark_answers: s.landmark_answers,
            fallbacks: s.fallbacks,
            rejections: s.rejections,
            promotions: s.promotions,
            len: s.entries.len(),
            capacity: self.capacity,
        }
    }

    /// Drop every cached row (counters are kept — they describe the whole
    /// lifetime of the cache).
    pub fn clear(&self) {
        self.state.lock().unwrap().entries.clear();
    }

    /// The serving entry point: the row for `source`, shared, plus whether
    /// it was a cache hit. Misses pass the admission gate (if configured),
    /// compute **outside** the lock (concurrent requests for other sources
    /// proceed) and then fill the cache, evicting the least recently used
    /// row if the table is full.
    pub fn row(&self, source: VId) -> Result<(Arc<CachedRow>, bool), SsspError> {
        if let Some(row) = self.lookup(source) {
            return Ok((row, true));
        }
        let _permit = self.admit()?;
        let (dist, ledger) = self.inner.distances_from_with_ledger(source)?;
        Ok((self.insert(source, CachedRow { dist, ledger }), false))
    }

    /// Acquire an exploration slot from the gate (no-op without one);
    /// count and type the rejection otherwise.
    fn admit(&self) -> Result<Option<GatePermit<'_>>, SsspError> {
        match &self.gate {
            None => Ok(None),
            Some(g) => match g.admit() {
                Ok(p) => Ok(Some(p)),
                Err(observed) => {
                    self.state.lock().unwrap().rejections += 1;
                    Err(SsspError::Overloaded {
                        in_flight: observed,
                        capacity: g.cfg.max_inflight,
                    })
                }
            },
        }
    }

    /// Hit path: scan, refresh recency, count. `None` counts a miss.
    fn lookup(&self, source: VId) -> Option<Arc<CachedRow>> {
        let mut s = self.state.lock().unwrap();
        if let Some(i) = s.entries.iter().position(|(v, _)| *v == source) {
            let entry = s.entries.remove(i);
            let row = Arc::clone(&entry.1);
            s.entries.push(entry);
            s.hits += 1;
            Some(row)
        } else {
            s.misses += 1;
            None
        }
    }

    /// Fill path after a miss computed outside the lock. If a concurrent
    /// miss for the same source filled the table first, its row wins (rows
    /// for one source are bit-identical by the determinism contract, so
    /// the choice is unobservable in answers) and only its recency is
    /// refreshed.
    fn insert(&self, source: VId, row: CachedRow) -> Arc<CachedRow> {
        let mut s = self.state.lock().unwrap();
        if let Some(i) = s.entries.iter().position(|(v, _)| *v == source) {
            let entry = s.entries.remove(i);
            let row = Arc::clone(&entry.1);
            s.entries.push(entry);
            return row;
        }
        if s.entries.len() == self.capacity {
            s.entries.remove(0); // least recently used; readers keep their Arc
            s.evictions += 1;
        }
        let row = Arc::new(row);
        s.entries.push((source, Arc::clone(&row)));
        row
    }

    /// Bump `source`'s fallback count under [`FillPolicy::PromoteAfterMisses`]
    /// and report whether this fallback should promote the full row.
    fn note_fallback_for_promotion(&self, source: VId, threshold: u32) -> bool {
        let mut s = self.state.lock().unwrap();
        if let Some(i) = s.miss_counts.iter().position(|(v, _)| *v == source) {
            s.miss_counts[i].1 += 1;
            if s.miss_counts[i].1 >= threshold {
                s.miss_counts.remove(i);
                return true;
            }
            return false;
        }
        if threshold == 1 {
            return true; // first fallback already qualifies; nothing to track
        }
        let cap = self.tracker_cap();
        if s.miss_counts.len() == cap {
            s.miss_counts.remove(0); // FIFO: forget the oldest tracked source
        }
        s.miss_counts.push((source, 1));
        false
    }
}

impl<O: DistanceOracle> DistanceOracle for CachedOracle<O> {
    fn name(&self) -> &'static str {
        "cached"
    }

    fn num_vertices(&self) -> usize {
        self.inner.num_vertices()
    }

    /// The worst answer any query can receive: the backend's stretch, or
    /// the landmark plane's `1+δ` when a policy lets the plane answer —
    /// whichever is larger.
    fn stretch_bound(&self) -> f64 {
        let inner = self.inner.stretch_bound();
        match &self.plane {
            Some(p) if !matches!(self.policy, FillPolicy::NeverFill) => {
                inner.max(p.stretch_bound())
            }
            _ => inner,
        }
    }

    fn cost(&self) -> &Ledger {
        self.inner.cost()
    }

    fn distances_from_with_ledger(&self, source: VId) -> Result<(Vec<Weight>, Ledger), SsspError> {
        let (row, _hit) = self.row(source)?;
        Ok((row.dist.clone(), row.ledger.clone()))
    }

    /// Mixed hit/miss batches go row by row through the cache (hits are
    /// free, misses fill — and pass the admission gate, so an overloaded
    /// server rejects the batch at its first cold row), merged in source
    /// order like every other backend.
    fn distances_multi(&self, sources: &[VId]) -> Result<MultiSourceResult, SsspError> {
        let n = self.num_vertices();
        let mut dist = crate::DistanceMatrix::with_capacity(sources.len(), n);
        let mut ledger = Ledger::new();
        for &s in sources {
            let (row, _hit) = self.row(s)?;
            ledger.absorb_parallel(&row.ledger);
            dist.push_row(&row.dist);
        }
        Ok(MultiSourceResult {
            dist,
            sources: sources.to_vec(),
            ledger,
        })
    }

    /// Nearest-source queries are not per-source row queries — delegate to
    /// the backend (the hopset engine answers them in **one** multi-source
    /// exploration) without touching the cache.
    fn distances_to_nearest(&self, sources: &[VId]) -> Result<Vec<Weight>, SsspError> {
        self.inner.distances_to_nearest(sources)
    }

    /// Point-to-point, in increasing cost order:
    ///
    /// 1. a resident row for `u` answers immediately (hit, refreshes
    ///    recency) — bit-identical to the backend;
    /// 2. on a miss, a configured landmark plane (policy ≠
    ///    [`FillPolicy::NeverFill`]) answers certified pairs in `O(L)`
    ///    with documented `(1+δ)` stretch — no exploration, no gate;
    /// 3. otherwise the request passes the admission gate and falls back
    ///    to the backend's early-exit exploration (bit-identical to the
    ///    full row); under [`FillPolicy::PromoteAfterMisses`], the `k`-th
    ///    fallback for a source computes and caches its full row instead.
    fn distance(&self, u: VId, v: VId) -> Result<Weight, SsspError> {
        let n = self.num_vertices();
        check_source(n, v)?;
        if let Some(row) = self.lookup(u) {
            check_source(n, u)?; // resident rows imply validity; keep the contract anyway
            return Ok(row.dist[v as usize]);
        }
        check_source(n, u)?;
        if !matches!(self.policy, FillPolicy::NeverFill) {
            if let Some(plane) = &self.plane {
                if let Some(d) = plane.certify(u, v) {
                    self.state.lock().unwrap().landmark_answers += 1;
                    return Ok(d);
                }
            }
        }
        let _permit = self.admit()?;
        self.state.lock().unwrap().fallbacks += 1;
        if let FillPolicy::PromoteAfterMisses(k) = self.policy {
            if self.note_fallback_for_promotion(u, k) {
                let (dist, ledger) = self.inner.distances_from_with_ledger(u)?;
                let row = self.insert(u, CachedRow { dist, ledger });
                self.state.lock().unwrap().promotions += 1;
                return Ok(row.dist[v as usize]);
            }
        }
        self.inner.distance(u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Oracle;
    use pgraph::gen;

    fn served() -> CachedOracle<Oracle> {
        let g = gen::gnm_connected(100, 300, 7, 1.0, 8.0);
        let oracle = Oracle::builder(g).eps(0.25).kappa(4).build().unwrap();
        CachedOracle::new(oracle, 2).unwrap()
    }

    #[test]
    fn capacity_zero_is_a_config_error() {
        let g = gen::path(8);
        let oracle = Oracle::builder(g).build().unwrap();
        assert!(matches!(
            CachedOracle::new(oracle, 0),
            Err(SsspError::Config(_))
        ));
    }

    #[test]
    fn config_conflicts_are_typed() {
        let g = gen::path(8);
        let mk = || Oracle::builder(gen::path(8)).build().unwrap();
        // LandmarkOnly without a plane.
        assert!(matches!(
            CachedOracle::with_config(mk(), CacheConfig::new(2).policy(FillPolicy::LandmarkOnly)),
            Err(SsspError::Config(_))
        ));
        // Admission capacity 0.
        assert!(matches!(
            CachedOracle::with_config(mk(), CacheConfig::new(2).admission(0, false)),
            Err(SsspError::Config(_))
        ));
        // Promotion threshold 0.
        assert!(matches!(
            CachedOracle::with_config(
                mk(),
                CacheConfig::new(2).policy(FillPolicy::PromoteAfterMisses(0))
            ),
            Err(SsspError::Config(_))
        ));
        // Prebuilt plane over the wrong graph.
        let small = Oracle::builder(g).build().unwrap();
        let plane = Arc::new(
            crate::LandmarkPlane::build(&small, &crate::LandmarkConfig::new(2, 1.0)).unwrap(),
        );
        let big = Oracle::builder(gen::path(16)).build().unwrap();
        assert!(matches!(
            CachedOracle::with_config(big, CacheConfig::new(2).landmark_plane(plane)),
            Err(SsspError::Config(_))
        ));
    }

    #[test]
    fn hits_are_bit_identical_and_counted() {
        let c = served();
        let cold = c.distances_from(5).unwrap();
        let reference = c.inner().distances_from(5).unwrap();
        let warm = c.distances_from(5).unwrap();
        for ((a, b), r) in cold.iter().zip(&warm).zip(&reference) {
            assert_eq!(a.to_bits(), b.to_bits());
            assert_eq!(a.to_bits(), r.to_bits());
        }
        let st = c.stats();
        assert_eq!((st.hits, st.misses, st.len), (1, 1, 1));
    }

    #[test]
    fn lru_eviction_is_strict_and_counted() {
        let c = served(); // capacity 2
        assert!(!c.row(0).unwrap().1);
        assert!(!c.row(1).unwrap().1);
        assert!(c.row(0).unwrap().1); // refreshes 0's recency: LRU is now 1
        assert!(!c.row(2).unwrap().1); // evicts 1
        assert!(c.row(0).unwrap().1); // 0 survived
        assert!(!c.row(1).unwrap().1); // 1 was evicted (evicts 2)
        let st = c.stats();
        assert_eq!(st.evictions, 2);
        assert_eq!(st.len, 2);
        assert_eq!(st.capacity, 2);
    }

    #[test]
    fn p2p_hits_read_the_row_and_misses_do_not_fill() {
        let c = served();
        let reference = c.inner().distances_from(3).unwrap();
        // Miss path (default NeverFill): no row resident, delegates, does
        // not fill, counts a fallback.
        let d = c.distance(3, 40).unwrap();
        assert_eq!(d.to_bits(), reference[40].to_bits());
        assert_eq!(c.stats().len, 0);
        assert_eq!(c.stats().fallbacks, 1);
        assert_eq!(c.stats().landmark_answers, 0);
        // Fill, then the p2p answer comes from the row (hit counted).
        c.row(3).unwrap();
        let hits_before = c.stats().hits;
        let d2 = c.distance(3, 40).unwrap();
        assert_eq!(d2.to_bits(), reference[40].to_bits());
        assert_eq!(c.stats().hits, hits_before + 1);
    }

    #[test]
    fn promote_after_k_misses_fills_on_the_kth_fallback() {
        let g = gen::gnm_connected(100, 300, 7, 1.0, 8.0);
        let oracle = Oracle::builder(g).eps(0.25).kappa(4).build().unwrap();
        let reference = oracle.distances_from(9).unwrap();
        let c = CachedOracle::with_config(
            oracle,
            CacheConfig::new(2).policy(FillPolicy::PromoteAfterMisses(3)),
        )
        .unwrap();
        for (i, v) in [10u32, 20, 30].iter().enumerate() {
            let d = c.distance(9, *v).unwrap();
            assert_eq!(d.to_bits(), reference[*v as usize].to_bits());
            let st = c.stats();
            assert_eq!(st.fallbacks as usize, i + 1);
            // The 3rd fallback promotes; before that nothing is resident.
            assert_eq!(st.len, usize::from(i == 2), "after fallback {}", i + 1);
        }
        let st = c.stats();
        assert_eq!(st.promotions, 1);
        // Subsequent p2p queries on the promoted source are hits.
        let before = st.hits;
        let d = c.distance(9, 55).unwrap();
        assert_eq!(d.to_bits(), reference[55].to_bits());
        assert_eq!(c.stats().hits, before + 1);
    }

    #[test]
    fn promotion_tracker_is_bounded() {
        let g = gen::gnm_connected(100, 300, 7, 1.0, 8.0);
        let oracle = Oracle::builder(g).eps(0.25).kappa(4).build().unwrap();
        let c = CachedOracle::with_config(
            oracle,
            CacheConfig::new(1).policy(FillPolicy::PromoteAfterMisses(100)),
        )
        .unwrap();
        // More distinct cold sources than the tracker holds.
        for s in 0..100u32 {
            let _ = c.distance(s, 0).unwrap();
        }
        let tracked = c.state.lock().unwrap().miss_counts.len();
        assert!(tracked <= c.tracker_cap());
        assert_eq!(c.stats().promotions, 0);
    }

    #[test]
    fn reject_policy_returns_overloaded_under_concurrent_misses() {
        use std::sync::mpsc;

        /// A backend whose row computation blocks until released — lets
        /// the test hold an exploration slot deterministically.
        struct Blocking {
            n: usize,
            gate: Mutex<bool>,
            cv: Condvar,
            entered: mpsc::Sender<()>,
        }
        impl DistanceOracle for Blocking {
            fn name(&self) -> &'static str {
                "blocking"
            }
            fn num_vertices(&self) -> usize {
                self.n
            }
            fn stretch_bound(&self) -> f64 {
                1.0
            }
            fn cost(&self) -> &Ledger {
                Box::leak(Box::new(Ledger::new()))
            }
            fn distances_from_with_ledger(
                &self,
                _source: VId,
            ) -> Result<(Vec<Weight>, Ledger), SsspError> {
                self.entered.send(()).unwrap();
                let mut open = self.gate.lock().unwrap();
                while !*open {
                    open = self.cv.wait(open).unwrap();
                }
                Ok((vec![0.0; self.n], Ledger::new()))
            }
        }

        let (tx, rx) = mpsc::channel();
        let backend = Blocking {
            n: 8,
            gate: Mutex::new(false),
            cv: Condvar::new(),
            entered: tx,
        };
        let c = Arc::new(
            CachedOracle::with_config(backend, CacheConfig::new(4).admission(1, false)).unwrap(),
        );
        // Thread 1 occupies the single exploration slot...
        let c1 = Arc::clone(&c);
        let t = std::thread::spawn(move || c1.row(0).map(|r| r.1));
        rx.recv().unwrap(); // ...and is provably inside the backend now.
                            // A second miss must be rejected, typed and counted.
        match c.row(1) {
            Err(SsspError::Overloaded {
                in_flight,
                capacity,
            }) => {
                assert_eq!((in_flight, capacity), (1, 1));
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(c.stats().rejections, 1);
        // Release the blocked exploration; the first request completes.
        {
            let backend = c.inner();
            *backend.gate.lock().unwrap() = true;
            backend.cv.notify_all();
        }
        assert_eq!(t.join().unwrap().unwrap(), false);
        // The slot is free again: the once-rejected request now succeeds.
        assert!(c.row(1).is_ok());
    }

    #[test]
    fn queue_policy_blocks_instead_of_rejecting() {
        let g = gen::gnm_connected(60, 180, 3, 1.0, 8.0);
        let oracle = Oracle::builder(g).eps(0.25).kappa(4).build().unwrap();
        let c = Arc::new(
            CachedOracle::with_config(oracle, CacheConfig::new(8).admission(1, true)).unwrap(),
        );
        // Many concurrent misses through a 1-slot queueing gate: all
        // succeed (backpressure, not shedding), none are rejected.
        let handles: Vec<_> = (0..6u32)
            .map(|s| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || c.row(s).is_ok())
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap());
        }
        let st = c.stats();
        assert_eq!(st.rejections, 0);
        assert_eq!(st.misses, 6);
    }

    #[test]
    fn ledgers_are_cached_with_rows() {
        let c = served();
        let (_, cold_ledger) = c.distances_from_with_ledger(9).unwrap();
        let (_, warm_ledger) = c.distances_from_with_ledger(9).unwrap();
        assert_eq!(cold_ledger, warm_ledger);
        // Batches over hits reproduce cold batch ledgers exactly.
        let warm_batch = c.distances_multi(&[9]).unwrap();
        assert_eq!(warm_batch.ledger, cold_ledger);
    }

    #[test]
    fn invalid_sources_do_not_poison_the_cache() {
        let c = served();
        assert!(matches!(
            c.row(999),
            Err(SsspError::InvalidSource { source: 999, .. })
        ));
        assert!(matches!(
            c.distance(0, 999),
            Err(SsspError::InvalidSource { .. })
        ));
        // The failed miss was counted, but nothing was inserted.
        let st = c.stats();
        assert_eq!(st.len, 0);
        assert_eq!(st.misses, 1);
    }
}
