//! Approximate shortest-path **trees** (Theorems 4.6 and D.2) — the
//! **legacy borrowed engine**.
//!
//! Thin application wrapper over `hopset::path_report`: builds the
//! path-reporting hopset once and answers SPT queries for any root.
//!
//! New code should use [`crate::Oracle::builder`] with
//! [`crate::OracleBuilder::paths`]`(true)`: the owned oracle serves SPT
//! extraction *and* all distance queries from the same built object, and
//! selects the plain vs reduced pipeline automatically.

use hopset::multi_scale::{build_hopset, BuildOptions, BuiltHopset};
use hopset::params::{HopsetParams, ParamError, ParamMode};
use hopset::path_report::{build_spt, build_spt_reduced, SptResult};
use hopset::reduction::{build_reduced_hopset, ReducedHopset};
use pgraph::{Graph, VId};

/// Which pipeline backs the engine.
enum Backend {
    /// §2/§4: bounded aspect ratio, plain scales (Theorem 4.6).
    Plain(BuiltHopset),
    /// Appendix C/D: weight-reduced (Theorem D.2).
    Reduced(ReducedHopset),
}

/// A reusable `(1+ε)`-SPT query engine.
pub struct ApproxSptEngine<'g> {
    g: &'g Graph,
    backend: Backend,
}

impl<'g> ApproxSptEngine<'g> {
    /// Build on the plain pipeline (fine for `Λ = poly(n)`; Theorem 4.6).
    #[deprecated(
        since = "0.2.0",
        note = "use sssp::Oracle::builder(graph).paths(true).pipeline(Pipeline::Plain).build()"
    )]
    pub fn build(g: &'g Graph, eps: f64, kappa: usize) -> Result<Self, ParamError> {
        let params =
            HopsetParams::practical(g.num_vertices().max(2), eps, kappa, g.aspect_ratio_bound())?;
        let built = build_hopset(g, &params, BuildOptions { record_paths: true });
        Ok(ApproxSptEngine {
            g,
            backend: Backend::Plain(built),
        })
    }

    /// Build through the Klein–Sairam reduction (any aspect ratio;
    /// Theorem D.2).
    #[deprecated(
        since = "0.2.0",
        note = "use sssp::Oracle::builder(graph).paths(true).pipeline(Pipeline::Reduced).build()"
    )]
    pub fn build_reduced(g: &'g Graph, eps: f64, kappa: usize) -> Result<Self, ParamError> {
        let rho = (1.0 / kappa as f64).min(0.499_999);
        let reduced = build_reduced_hopset(
            g,
            eps,
            kappa,
            rho,
            ParamMode::Practical,
            BuildOptions { record_paths: true },
        )?;
        Ok(ApproxSptEngine {
            g,
            backend: Backend::Reduced(reduced),
        })
    }

    /// Number of hopset edges backing the engine.
    pub fn hopset_size(&self) -> usize {
        match &self.backend {
            Backend::Plain(b) => b.hopset.len(),
            Backend::Reduced(r) => r.hopset.len(),
        }
    }

    /// Extract the `(1+ε)`-SPT rooted at `source`.
    pub fn spt(&self, source: VId) -> SptResult {
        match &self.backend {
            Backend::Plain(b) => build_spt(self.g, b, source),
            Backend::Reduced(r) => build_spt_reduced(self.g, r, source),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)]
    use super::*;
    use hopset::path_report::validate_spt;
    use pgraph::gen;

    #[test]
    fn plain_engine_produces_valid_spts() {
        let g = gen::clique_chain(4, 7, 2.0);
        let eng = ApproxSptEngine::build(&g, 0.25, 4).unwrap();
        for src in [0u32, 13, 27] {
            let spt = eng.spt(src);
            let val = validate_spt(&g, &spt);
            assert_eq!(val.non_graph_edges, 0);
            assert_eq!(val.missing, 0);
            assert!(val.max_stretch <= 1.25 + 1e-9, "src {src}: {val:?}");
        }
    }

    #[test]
    fn reduced_engine_handles_huge_weights() {
        let g = gen::exponential_path(28, 3.0);
        let eng = ApproxSptEngine::build_reduced(&g, 0.5, 4).unwrap();
        let spt = eng.spt(0);
        let val = validate_spt(&g, &spt);
        assert_eq!(val.non_graph_edges, 0);
        assert_eq!(val.missing, 0);
        assert!(val.max_stretch <= 1.5 + 1e-9, "{val:?}");
        assert!(eng.hopset_size() > 0);
    }
}
