//! The unified distance-oracle facade: one owned, thread-safe query object
//! over every backend in the workspace.
//!
//! The paper's whole point is that a single artifact — the deterministic
//! `(1+ε, β)`-hopset of Theorem 3.7 — answers *every* downstream query:
//! approximate single-source distances (aSSSD, Theorem 3.8), multi-source
//! batches (aMSSD), and `(1+ε)`-shortest-path trees (Theorems 4.6/D.2).
//! This module makes that one artifact one *object*:
//!
//! * [`DistanceOracle`] — the object-safe query trait (`distances_from`,
//!   [`distances_multi`](DistanceOracle::distances_multi),
//!   [`distance`](DistanceOracle::distance), nearest-source,
//!   [`stretch_bound`](DistanceOracle::stretch_bound), and
//!   [`cost`](DistanceOracle::cost) ledger reporting), implemented by the
//!   hopset engine and by the exact baselines, so experiments and callers
//!   compare backends generically;
//! * [`Oracle`] + [`OracleBuilder`] — the hopset engine, built fluently
//!   (`Oracle::builder(g).eps(0.25).kappa(4).paths(true).build()?`). It
//!   **owns** the graph via `Arc<Graph>`, pre-builds the `G ∪ H` union CSR
//!   once (queries reuse it), auto-selects the plain (§2) vs
//!   Klein–Sairam-reduced (Appendix C) pipeline from the aspect-ratio
//!   bound, serves SPT extraction from the same built object, and can pin
//!   its own `pram::pool` thread count
//!   ([`threads`](OracleBuilder::threads)) for construction and queries —
//!   results are bit-identical for every choice (DESIGN.md §5);
//! * [`DeltaSteppingOracle`] / [`DijkstraOracle`] — the exact baselines of
//!   experiment E10 behind the same trait;
//! * [`SsspError`] — one error type for parameter validation, invalid
//!   sources, and configuration conflicts (no panics in the query path);
//! * [`DistanceMatrix`] — flat row-major storage for multi-source results
//!   (one allocation, cache-friendly).
//!
//! Everything here is owned data: `Oracle` is `Send + Sync`, so an
//! `Arc<Oracle>` can serve concurrent query traffic from many threads —
//! the serving-system architecture the ROADMAP targets.
//!
//! ```
//! use pgraph::gen;
//! use sssp::{DistanceOracle, Oracle};
//!
//! let g = gen::road_grid(8, 8, 3, 1.0, 6.0);
//! let oracle = Oracle::builder(g).eps(0.25).kappa(4).build().unwrap();
//! let d = oracle.distances_from(0).unwrap();
//! assert!(d[63].is_finite());
//! assert!(oracle.stretch_bound() == 1.25);
//! ```

use crate::delta_stepping::{default_delta, delta_stepping_on};
use hopset::multi_scale::{build_hopset_on, BuildOptions, BuiltHopset};
use hopset::params::{HopsetParams, ParamError, ParamMode};
use hopset::path_report::{build_spt_on, build_spt_reduced_on, SptResult};
use hopset::reduction::{build_reduced_hopset_on, ReducedHopset};
use pgraph::{ceil_log2, Graph, OverlayCsr, UnionGraph, VId, Weight, INF};
use pram::pool::Executor;
use pram::{bford, pool, Ledger};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Unified error type of the query layer: parameter validation, invalid
/// sources, and builder configuration conflicts. Replaces the panics and
/// ad-hoc `Result` shapes of the pre-oracle API.
#[derive(Clone, Debug, PartialEq)]
pub enum SsspError {
    /// Hopset parameter validation failed (ε, κ, ρ, n out of range).
    Params(ParamError),
    /// A query named a vertex outside `[0, n)` (as a source **or** a
    /// destination — `source` holds whichever argument was offending).
    InvalidSource {
        /// The offending vertex id.
        source: VId,
        /// Number of vertices of the oracle's graph.
        n: usize,
    },
    /// The query needs recorded memory paths, but the oracle was built
    /// without [`OracleBuilder::paths`]`(true)`.
    PathsNotRecorded,
    /// Builder options conflict (the message names the conflict).
    Config(String),
    /// The serving layer's admission gate rejected the request: the
    /// number of in-flight backend explorations already met the
    /// configured capacity and the gate's policy is reject-not-queue.
    /// Retryable by construction — the observed load is part of the
    /// error so callers can shed or back off deliberately.
    Overloaded {
        /// Explorations in flight when the request arrived.
        in_flight: usize,
        /// The configured in-flight bound.
        capacity: usize,
    },
}

impl std::fmt::Display for SsspError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SsspError::Params(e) => write!(f, "invalid parameters: {e}"),
            SsspError::InvalidSource { source, n } => {
                write!(
                    f,
                    "query vertex {source} out of range (graph has {n} vertices)"
                )
            }
            SsspError::PathsNotRecorded => write!(
                f,
                "SPT extraction requires an oracle built with .paths(true)"
            ),
            SsspError::Config(msg) => write!(f, "conflicting oracle configuration: {msg}"),
            SsspError::Overloaded {
                in_flight,
                capacity,
            } => write!(
                f,
                "admission gate rejected the request: {in_flight} explorations \
                 in flight at capacity {capacity}"
            ),
        }
    }
}

impl std::error::Error for SsspError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SsspError::Params(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParamError> for SsspError {
    fn from(e: ParamError) -> Self {
        SsspError::Params(e)
    }
}

#[inline]
pub(crate) fn check_source(n: usize, v: VId) -> Result<(), SsspError> {
    if (v as usize) < n {
        Ok(())
    } else {
        Err(SsspError::InvalidSource { source: v, n })
    }
}

// ---------------------------------------------------------------------------
// DistanceMatrix / MultiSourceResult
// ---------------------------------------------------------------------------

/// Flat row-major distance matrix: row `i` holds the distances from the
/// `i`-th queried source to every vertex. One allocation, cache-friendly —
/// the serving-ready replacement for `Vec<Vec<Weight>>`.
#[derive(Clone, Debug, PartialEq)]
pub struct DistanceMatrix {
    /// Row-major data: `data[i * num_targets + v]`.
    data: Vec<Weight>,
    /// Row length (the number of vertices of the queried graph).
    num_targets: usize,
}

impl DistanceMatrix {
    /// An empty matrix with `num_targets` columns.
    pub fn with_targets(num_targets: usize) -> Self {
        DistanceMatrix {
            data: Vec::new(),
            num_targets,
        }
    }

    /// An empty matrix pre-allocating space for `rows` rows.
    pub fn with_capacity(rows: usize, num_targets: usize) -> Self {
        DistanceMatrix {
            data: Vec::with_capacity(rows * num_targets),
            num_targets,
        }
    }

    /// Append one row. Panics if `row.len() != num_targets` (rows are
    /// produced by this crate's own query engines).
    pub fn push_row(&mut self, row: &[Weight]) {
        assert_eq!(row.len(), self.num_targets, "row length mismatch");
        self.data.extend_from_slice(row);
    }

    /// Number of rows (sources).
    #[inline]
    pub fn num_sources(&self) -> usize {
        self.data.len().checked_div(self.num_targets).unwrap_or(0)
    }

    /// Number of columns (target vertices).
    #[inline]
    pub fn num_targets(&self) -> usize {
        self.num_targets
    }

    /// Row `i`: the distances from the `i`-th source to every vertex.
    #[inline]
    pub fn row(&self, i: usize) -> &[Weight] {
        &self.data[i * self.num_targets..(i + 1) * self.num_targets]
    }

    /// The flat row-major backing slice.
    #[inline]
    pub fn as_slice(&self) -> &[Weight] {
        &self.data
    }

    /// Copy out into the legacy nested shape (tests, pretty-printing).
    pub fn to_nested(&self) -> Vec<Vec<Weight>> {
        (0..self.num_sources())
            .map(|i| self.row(i).to_vec())
            .collect()
    }
}

/// Result of a multi-source (aMSSD) query.
#[derive(Clone, Debug)]
pub struct MultiSourceResult {
    /// `dist.row(i)[v]` = approximate distance from `sources[i]` to `v`.
    pub dist: DistanceMatrix,
    /// The sources queried.
    pub sources: Vec<VId>,
    /// Combined PRAM cost: depth = max over explorations (they run in
    /// parallel), work = sum.
    pub ledger: Ledger,
}

// ---------------------------------------------------------------------------
// The trait
// ---------------------------------------------------------------------------

/// An object-safe, thread-safe distance oracle over a fixed graph.
///
/// Implemented by the hopset engine ([`Oracle`]) and the exact baselines
/// ([`DeltaSteppingOracle`], [`DijkstraOracle`]), so that experiments,
/// benchmarks, and callers compare backends through one surface:
///
/// ```
/// use pgraph::gen;
/// use sssp::{DeltaSteppingOracle, DijkstraOracle, DistanceOracle, Oracle};
/// use std::sync::Arc;
///
/// let g = Arc::new(gen::path(32));
/// let backends: Vec<Box<dyn DistanceOracle>> = vec![
///     Box::new(Oracle::builder(Arc::clone(&g)).build().unwrap()),
///     Box::new(DeltaSteppingOracle::new(Arc::clone(&g))),
///     Box::new(DijkstraOracle::new(g)),
/// ];
/// for b in &backends {
///     let d = b.distances_from(0).unwrap();
///     assert!(d[31] <= b.stretch_bound() * 31.0 + 1e-9);
/// }
/// ```
///
/// The `Send + Sync` supertrait is the serving contract: every implementor
/// owns its data (no graph lifetime parameter), so `Arc<dyn DistanceOracle>`
/// can be queried from many threads concurrently.
pub trait DistanceOracle: Send + Sync {
    /// A short stable backend name (table rows, logs).
    fn name(&self) -> &'static str;

    /// Number of vertices of the underlying graph.
    fn num_vertices(&self) -> usize;

    /// Guaranteed multiplicative stretch: answers are within
    /// `[d, stretch_bound() * d]` of the exact distance `d`. Exact backends
    /// return `1.0`.
    fn stretch_bound(&self) -> f64;

    /// The construction-cost ledger (PRAM work/depth paid up front, before
    /// any query). Exact baselines have no precomputation and report an
    /// empty ledger.
    fn cost(&self) -> &Ledger;

    /// Distances from one source plus the query's own PRAM cost.
    fn distances_from_with_ledger(&self, source: VId) -> Result<(Vec<Weight>, Ledger), SsspError>;

    /// Distances from one source (aSSSD).
    fn distances_from(&self, source: VId) -> Result<Vec<Weight>, SsspError> {
        Ok(self.distances_from_with_ledger(source)?.0)
    }

    /// Distances for all pairs in `S × V` (aMSSD): `|S|` independent
    /// explorations, charged as parallel (work adds, depth does not).
    fn distances_multi(&self, sources: &[VId]) -> Result<MultiSourceResult, SsspError> {
        let n = self.num_vertices();
        let mut dist = DistanceMatrix::with_capacity(sources.len(), n);
        let mut ledger = Ledger::new();
        for &s in sources {
            let (row, l) = self.distances_from_with_ledger(s)?;
            ledger.absorb_parallel(&l);
            dist.push_row(&row);
        }
        Ok(MultiSourceResult {
            dist,
            sources: sources.to_vec(),
            ledger,
        })
    }

    /// Nearest-source distances: `min_{s ∈ S} d(s, v)` for every `v` — the
    /// "forest" flavor of aMSSD (facility-location style queries).
    fn distances_to_nearest(&self, sources: &[VId]) -> Result<Vec<Weight>, SsspError> {
        let n = self.num_vertices();
        let mut best = vec![INF; n];
        for &s in sources {
            let row = self.distances_from(s)?;
            for (b, d) in best.iter_mut().zip(&row) {
                if *d < *b {
                    *b = *d;
                }
            }
        }
        Ok(best)
    }

    /// Point-to-point distance `u → v`. The default computes a full row;
    /// backends override it with early-exit variants that are
    /// **bit-identical** to `distances_from(u)[v]` (the serving contract,
    /// DESIGN.md §9).
    fn distance(&self, u: VId, v: VId) -> Result<Weight, SsspError> {
        check_source(self.num_vertices(), v)?;
        Ok(self.distances_from(u)?[v as usize])
    }
}

/// Sharing an oracle behind an `Arc` keeps the trait surface: every method
/// delegates, so backend overrides (early-exit `distance`, batched
/// `distances_multi`, single-pass `distances_to_nearest`) stay in effect —
/// the shape the serving layer ([`crate::CachedOracle`]) composes over.
impl<T: DistanceOracle + ?Sized> DistanceOracle for Arc<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn num_vertices(&self) -> usize {
        (**self).num_vertices()
    }

    fn stretch_bound(&self) -> f64 {
        (**self).stretch_bound()
    }

    fn cost(&self) -> &Ledger {
        (**self).cost()
    }

    fn distances_from_with_ledger(&self, source: VId) -> Result<(Vec<Weight>, Ledger), SsspError> {
        (**self).distances_from_with_ledger(source)
    }

    fn distances_from(&self, source: VId) -> Result<Vec<Weight>, SsspError> {
        (**self).distances_from(source)
    }

    fn distances_multi(&self, sources: &[VId]) -> Result<MultiSourceResult, SsspError> {
        (**self).distances_multi(sources)
    }

    fn distances_to_nearest(&self, sources: &[VId]) -> Result<Vec<Weight>, SsspError> {
        (**self).distances_to_nearest(sources)
    }

    fn distance(&self, u: VId, v: VId) -> Result<Weight, SsspError> {
        (**self).distance(u, v)
    }
}

// ---------------------------------------------------------------------------
// The hopset oracle + builder
// ---------------------------------------------------------------------------

/// Which hopset pipeline backs (or should back) an [`Oracle`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pipeline {
    /// Pick from the aspect-ratio bound: plain while `Λ ≤ n²` (the `log Λ`
    /// scale count stays within the poly(n) budget of §2), Klein–Sairam
    /// reduced beyond (Appendix C keeps every level's aspect at `O(n/ε)`).
    Auto,
    /// §2/§3: bounded aspect ratio, plain multi-scale (Theorems 3.7/4.6).
    Plain,
    /// Appendix C/D: weight-reduced, no aspect-ratio assumption
    /// (Theorems C.3/D.2).
    Reduced,
}

#[derive(Debug)]
pub(crate) enum OracleBackend {
    Plain(BuiltHopset),
    Reduced(ReducedHopset),
}

/// Fluent configuration for [`Oracle`]. Obtain via [`Oracle::builder`];
/// every setter has a documented default, and [`OracleBuilder::build`]
/// validates the combination (returning [`SsspError`] instead of panicking).
#[derive(Clone, Debug)]
pub struct OracleBuilder {
    graph: Arc<Graph>,
    eps: f64,
    kappa: usize,
    rho: Option<f64>,
    mode: ParamMode,
    hop_cap: Option<usize>,
    paths: bool,
    pipeline: Pipeline,
    threads: Option<usize>,
    executor: Option<Executor>,
}

impl OracleBuilder {
    /// Target stretch `1 + eps`, `eps ∈ (0, 1)`. Default `0.25`.
    pub fn eps(mut self, eps: f64) -> Self {
        self.eps = eps;
        self
    }

    /// Sparsity parameter `κ ≥ 2` (hopset size `O(n^{1+1/κ})` per scale).
    /// Default `4`.
    pub fn kappa(mut self, kappa: usize) -> Self {
        self.kappa = kappa;
        self
    }

    /// Work parameter `ρ ∈ (0, 1/2)`. Default `min(1/κ, 0.499…)` — the
    /// setting of the SSSP corollary after Theorem 3.8.
    pub fn rho(mut self, rho: f64) -> Self {
        self.rho = Some(rho);
        self
    }

    /// Constant-instantiation mode ([`ParamMode::Practical`] by default).
    pub fn mode(mut self, mode: ParamMode) -> Self {
        self.mode = mode;
        self
    }

    /// Clamp exploration/query hop budgets (practical-scale runs). Only
    /// meaningful on the plain pipeline; conflicts with
    /// [`Pipeline::Reduced`] (under [`Pipeline::Auto`] it forces plain).
    pub fn hop_cap(mut self, cap: usize) -> Self {
        self.hop_cap = Some(cap);
        self
    }

    /// Record memory paths on every hopset edge (§4), enabling
    /// [`Oracle::spt`]. Default `false` (paths cost memory).
    pub fn paths(mut self, record: bool) -> Self {
        self.paths = record;
        self
    }

    /// Select the construction pipeline explicitly. Default
    /// [`Pipeline::Auto`].
    pub fn pipeline(mut self, pipeline: Pipeline) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Pin the thread count: [`build`](OracleBuilder::build) creates a
    /// **private** persistent `pram` pool ([`Executor::new`]) of this size
    /// that serves the construction and every subsequent query — no global
    /// execution state is shared with other oracles (the deterministic
    /// chunked scheduling makes results bit-identical for every choice, so
    /// this knob trades wall-clock only). `0` clamps to `1` per
    /// [`Executor::new`]'s documented rule. Default: inherit the
    /// process-default executor at build time ([`Executor::current`]:
    /// scoped `pool::with_threads` > `pool::set_global_threads` >
    /// `PRAM_SSSP_THREADS` > hardware parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Run on an explicit executor handle instead (e.g. one pool shared by
    /// several oracles, or a bench-controlled one). Takes precedence over
    /// [`threads`](OracleBuilder::threads).
    pub fn executor(mut self, exec: Executor) -> Self {
        self.executor = Some(exec);
        self
    }

    /// Build the oracle: validate the configuration, run the deterministic
    /// hopset construction, and assemble the owned `G ∪ H` union CSR that
    /// every subsequent query reuses.
    pub fn build(self) -> Result<Oracle, SsspError> {
        let g = &self.graph;
        let n = g.num_vertices().max(2);
        let aspect = g.aspect_ratio_bound();
        let rho = self
            .rho
            .unwrap_or_else(|| (1.0 / self.kappa as f64).min(0.499_999));

        let pipeline = match self.pipeline {
            Pipeline::Plain => Pipeline::Plain,
            Pipeline::Reduced => {
                if self.hop_cap.is_some() {
                    return Err(SsspError::Config(
                        "hop_cap applies to the plain pipeline only; the reduced pipeline's \
                         hop budget is 6β+5 (Theorem C.3)"
                            .into(),
                    ));
                }
                Pipeline::Reduced
            }
            Pipeline::Auto => {
                // Plain pays ⌈log Λ⌉ scales; beyond Λ = n² the reduction's
                // per-level O(n/ε) aspect bound wins. A hop cap is a
                // plain-pipeline knob, so it pins Auto to plain.
                if self.hop_cap.is_none() && aspect > (n as f64).powi(2) {
                    Pipeline::Reduced
                } else {
                    Pipeline::Plain
                }
            }
        };

        let opts = BuildOptions {
            record_paths: self.paths,
        };
        // The executor the oracle owns: an injected handle wins, then a
        // pinned private pool, then the process default captured once here
        // (construction and every query run on the same pool either way —
        // "parallel round = barrier", never "parallel round = spawn").
        let exec = match (self.executor, self.threads) {
            (Some(exec), _) => exec,
            (None, Some(t)) => Executor::new(t),
            // xlint: allow(ambient-threads, builder inherits the process default once at build time)
            (None, None) => Executor::current(),
        };
        let (backend, query_hops) = match pipeline {
            Pipeline::Plain => {
                let params = HopsetParams::new(
                    n,
                    self.eps,
                    self.kappa,
                    rho,
                    self.mode,
                    aspect,
                    self.hop_cap,
                )?;
                let built = build_hopset_on(&exec, g, &params, opts);
                let hops = built.params.query_hops;
                (OracleBackend::Plain(built), hops)
            }
            Pipeline::Reduced => {
                let reduced =
                    build_reduced_hopset_on(&exec, g, self.eps, self.kappa, rho, self.mode, opts)?;
                let hops = reduced.query_hops;
                (OracleBackend::Reduced(reduced), hops)
            }
            Pipeline::Auto => unreachable!("resolved above"),
        };

        // The union CSR is built exactly once, bucketed straight from the
        // store's flat columns — no `(u, v, w)` triple list is ever
        // materialized; distances_from / distances_multi / spt all reuse it.
        let union = {
            let _ph = pram::phase::PhaseScope::enter("oracle-assembly");
            let h = match &backend {
                OracleBackend::Plain(b) => &b.hopset,
                OracleBackend::Reduced(r) => &r.hopset,
            };
            let csr = OverlayCsr::build_columns(self.graph.num_vertices(), h.us(), h.vs(), h.ws());
            UnionGraph::from_csr(Arc::clone(&self.graph), csr)
        };

        Ok(Oracle {
            union,
            backend,
            eps: self.eps,
            kappa: self.kappa,
            query_hops,
            paths: self.paths,
            threads: self.threads,
            exec,
        })
    }
}

/// The hopset-backed distance oracle: the paper's one artifact as one
/// owned, thread-safe object.
///
/// Built once via [`Oracle::builder`], it serves aSSSD
/// ([`DistanceOracle::distances_from`]), aMSSD batches
/// ([`DistanceOracle::distances_multi`]), nearest-source queries,
/// point-to-point [`DistanceOracle::distance`], and — when built with
/// [`OracleBuilder::paths`]`(true)` — `(1+ε)`-shortest-path trees
/// ([`Oracle::spt`]), all from the same pre-built `G ∪ H` union CSR.
///
/// `Oracle` is `Send + Sync` and owns the graph via `Arc<Graph>`: wrap it
/// in an `Arc` and query it from as many threads as you like.
#[derive(Debug)]
pub struct Oracle {
    pub(crate) union: UnionGraph,
    pub(crate) backend: OracleBackend,
    pub(crate) eps: f64,
    pub(crate) kappa: usize,
    pub(crate) query_hops: usize,
    pub(crate) paths: bool,
    pub(crate) threads: Option<usize>,
    /// The persistent pool construction ran on and every query runs on.
    pub(crate) exec: Executor,
}

impl Oracle {
    /// Start configuring an oracle over `graph` (accepts a `Graph` by value
    /// or an existing `Arc<Graph>`).
    pub fn builder(graph: impl Into<Arc<Graph>>) -> OracleBuilder {
        OracleBuilder {
            graph: graph.into(),
            eps: 0.25,
            kappa: 4,
            rho: None,
            mode: ParamMode::Practical,
            hop_cap: None,
            paths: false,
            pipeline: Pipeline::Auto,
            threads: None,
            executor: None,
        }
    }

    /// The graph the oracle answers queries on.
    pub fn graph(&self) -> &Graph {
        self.union.base()
    }

    /// The shared handle to the graph (cheap to clone).
    pub fn graph_arc(&self) -> &Arc<Graph> {
        self.union.base_arc()
    }

    /// The ε the oracle was built with (stretch bound is `1 + ε`).
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The κ the oracle was built with.
    pub fn kappa(&self) -> usize {
        self.kappa
    }

    /// The hop budget queries run with (β, or 6β+5 on the reduced pipeline).
    pub fn query_hops(&self) -> usize {
        self.query_hops
    }

    /// Which pipeline backs the oracle ([`Pipeline::Plain`] or
    /// [`Pipeline::Reduced`]; never `Auto` after building).
    pub fn pipeline(&self) -> Pipeline {
        match &self.backend {
            OracleBackend::Plain(_) => Pipeline::Plain,
            OracleBackend::Reduced(_) => Pipeline::Reduced,
        }
    }

    /// Number of hopset edges backing the oracle.
    pub fn hopset_size(&self) -> usize {
        match &self.backend {
            OracleBackend::Plain(b) => b.hopset.len(),
            OracleBackend::Reduced(r) => r.hopset.len(),
        }
    }

    /// Whether memory paths were recorded (i.e. [`Oracle::spt`] works).
    pub fn has_paths(&self) -> bool {
        self.paths
    }

    /// The pinned pool thread count, if [`OracleBuilder::threads`] set one
    /// (`None` = the oracle captured the process-default executor at build
    /// time; [`Oracle::executor`] reports the actual pool either way).
    pub fn threads(&self) -> Option<usize> {
        self.threads
    }

    /// The persistent executor this oracle owns: construction ran on it and
    /// every query runs on it. Cloning the handle shares the same pool.
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// The plain-pipeline construction report, if that pipeline backs the
    /// oracle.
    pub fn built(&self) -> Option<&BuiltHopset> {
        match &self.backend {
            OracleBackend::Plain(b) => Some(b),
            OracleBackend::Reduced(_) => None,
        }
    }

    /// The reduced-pipeline construction report, if that pipeline backs the
    /// oracle.
    pub fn reduced(&self) -> Option<&ReducedHopset> {
        match &self.backend {
            OracleBackend::Plain(_) => None,
            OracleBackend::Reduced(r) => Some(r),
        }
    }

    /// Extract the `(1+ε)`-shortest-path tree rooted at `source`
    /// (Theorem 4.6 / D.2). Requires [`OracleBuilder::paths`]`(true)`.
    pub fn spt(&self, source: VId) -> Result<SptResult, SsspError> {
        check_source(self.num_vertices(), source)?;
        if !self.paths {
            return Err(SsspError::PathsNotRecorded);
        }
        let view = self.union.view();
        Ok(match &self.backend {
            OracleBackend::Plain(b) => build_spt_on(&self.exec, &view, b, source),
            OracleBackend::Reduced(r) => build_spt_reduced_on(&self.exec, &view, r, source),
        })
    }

    /// Measure the stretch-vs-hop-budget curve of this oracle's `G ∪ H`
    /// (experiment F2) from `sources` at each budget in `budgets`.
    pub fn stretch_curve(
        &self,
        sources: &[VId],
        budgets: &[usize],
    ) -> Result<Vec<crate::eval::HopCurvePoint>, SsspError> {
        for &s in sources {
            check_source(self.num_vertices(), s)?;
        }
        Ok(crate::eval::stretch_vs_hops_view(
            &self.union.view(),
            sources,
            budgets,
        ))
    }
}

impl DistanceOracle for Oracle {
    fn name(&self) -> &'static str {
        match &self.backend {
            OracleBackend::Plain(_) => "hopset",
            OracleBackend::Reduced(_) => "hopset-reduced",
        }
    }

    fn num_vertices(&self) -> usize {
        self.union.num_vertices()
    }

    fn stretch_bound(&self) -> f64 {
        1.0 + self.eps
    }

    fn cost(&self) -> &Ledger {
        match &self.backend {
            OracleBackend::Plain(b) => &b.ledger,
            OracleBackend::Reduced(r) => &r.ledger,
        }
    }

    fn distances_from_with_ledger(&self, source: VId) -> Result<(Vec<Weight>, Ledger), SsspError> {
        check_source(self.num_vertices(), source)?;
        let mut ledger = Ledger::new();
        let r = bford::bellman_ford(
            &self.exec,
            &self.union.view(),
            &[source],
            self.query_hops,
            &mut ledger,
        );
        Ok((r.dist, ledger))
    }

    /// `|S|` independent β-hop explorations, batched: **one** union view
    /// and **one** reusable [`bford::BfordScratch`] serve the whole
    /// request batch instead of reallocating per source. On graphs below
    /// `PAR_THRESHOLD` vertices (where the per-round primitives stay
    /// sequential) the pool fans out **across sources** instead — coarse
    /// `task_bounds` chunks of the source list, one scratch per chunk,
    /// rows merged in source order (chunks are contiguous and increasing),
    /// so the result is bit-identical either way. The batch is *charged*
    /// as parallel on the ledger regardless (Theorem 3.8: work adds,
    /// depth does not — the PRAM claim is the counted one).
    fn distances_multi(&self, sources: &[VId]) -> Result<MultiSourceResult, SsspError> {
        let n = self.num_vertices();
        for &s in sources {
            check_source(n, s)?;
        }
        let hops = self.query_hops;
        // The overlay traversal state is amortized across the batch: the
        // view is materialized once, outside the per-source loop.
        let view = self.union.view();
        let mut ledger = Ledger::new();
        let mut dist = DistanceMatrix::with_capacity(sources.len(), n);
        if n < pool::PAR_THRESHOLD && sources.len() > 1 && self.exec.effective_threads() > 1 {
            let bounds = self.exec.task_bounds(sources.len());
            let per_chunk = self.exec.run_chunks(&bounds, |r| {
                // Inside a cross-source fan-out the per-round primitives
                // collapse to sequential on the same executor (nested
                // rounds never spawn or deadlock).
                let mut scratch = bford::BfordScratch::new();
                r.map(|i| {
                    let mut l = Ledger::new();
                    bford::bellman_ford_into(
                        &self.exec,
                        &view,
                        &[sources[i]],
                        hops,
                        &mut l,
                        &mut scratch,
                    );
                    (scratch.dist().to_vec(), l)
                })
                .collect::<Vec<_>>()
            });
            for (row, l) in per_chunk.into_iter().flatten() {
                ledger.absorb_parallel(&l);
                dist.push_row(&row);
            }
        } else {
            let mut scratch = bford::BfordScratch::new();
            for &s in sources {
                let mut l = Ledger::new();
                bford::bellman_ford_into(&self.exec, &view, &[s], hops, &mut l, &mut scratch);
                ledger.absorb_parallel(&l);
                // The row is copied straight into the flat matrix — the
                // scratch buffers are reused by the next source.
                dist.push_row(scratch.dist());
            }
        }
        Ok(MultiSourceResult {
            dist,
            sources: sources.to_vec(),
            ledger,
        })
    }

    /// One multi-source exploration (not `|S|` of them): the hopset engine
    /// answers nearest-source queries in a single β-round pass.
    fn distances_to_nearest(&self, sources: &[VId]) -> Result<Vec<Weight>, SsspError> {
        let n = self.num_vertices();
        for &s in sources {
            check_source(n, s)?;
        }
        let mut ledger = Ledger::new();
        let r = bford::bellman_ford(
            &self.exec,
            &self.union.view(),
            sources,
            self.query_hops,
            &mut ledger,
        );
        Ok(r.dist)
    }

    /// True point-to-point: the β-round loop stops as soon as `v`'s label
    /// settles ([`bford::bellman_ford_to`]; settle criterion proven in
    /// DESIGN.md §9). Bit-identical to `distances_from(u)[v]` — the early
    /// exit skips only rounds that provably cannot change `v`'s label, so
    /// the `(1+ε)` stretch bound carries over unchanged.
    fn distance(&self, u: VId, v: VId) -> Result<Weight, SsspError> {
        let n = self.num_vertices();
        check_source(n, v)?;
        check_source(n, u)?;
        let mut ledger = Ledger::new();
        let r = bford::bellman_ford_to(
            &self.exec,
            &self.union.view(),
            &[u],
            v,
            self.query_hops,
            &mut ledger,
        );
        Ok(r.dist)
    }
}

// ---------------------------------------------------------------------------
// Baseline oracles
// ---------------------------------------------------------------------------

/// Δ-stepping \[Meyer–Sanders 2003\] behind the [`DistanceOracle`] trait:
/// exact answers, no precomputation, `Θ(diameter/Δ)` depth — the practical
/// parallel competitor of experiment E10.
pub struct DeltaSteppingOracle {
    graph: Arc<Graph>,
    delta: Weight,
    build_cost: Ledger,
    /// The persistent pool relaxation rounds run on (process default at
    /// construction; swap with [`DeltaSteppingOracle::with_executor`]).
    exec: Executor,
}

impl DeltaSteppingOracle {
    /// Use the standard width heuristic [`default_delta`].
    pub fn new(graph: impl Into<Arc<Graph>>) -> Self {
        let graph = graph.into();
        let delta = default_delta(&graph);
        DeltaSteppingOracle {
            graph,
            delta,
            build_cost: Ledger::new(),
            // xlint: allow(ambient-threads, oracle captures the process default once at construction)
            exec: Executor::current(),
        }
    }

    /// Use an explicit bucket width `delta > 0`.
    pub fn with_delta(graph: impl Into<Arc<Graph>>, delta: Weight) -> Result<Self, SsspError> {
        if !(delta > 0.0 && delta.is_finite()) {
            return Err(SsspError::Config(format!(
                "delta-stepping bucket width must be positive and finite, got {delta}"
            )));
        }
        Ok(DeltaSteppingOracle {
            graph: graph.into(),
            delta,
            build_cost: Ledger::new(),
            // xlint: allow(ambient-threads, oracle captures the process default once at construction)
            exec: Executor::current(),
        })
    }

    /// Run queries on an explicit executor (builder-style).
    pub fn with_executor(mut self, exec: Executor) -> Self {
        self.exec = exec;
        self
    }

    /// The bucket width in use.
    pub fn delta(&self) -> Weight {
        self.delta
    }
}

impl DistanceOracle for DeltaSteppingOracle {
    fn name(&self) -> &'static str {
        "delta-stepping"
    }

    fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    fn stretch_bound(&self) -> f64 {
        1.0
    }

    fn cost(&self) -> &Ledger {
        &self.build_cost
    }

    fn distances_from_with_ledger(&self, source: VId) -> Result<(Vec<Weight>, Ledger), SsspError> {
        check_source(self.num_vertices(), source)?;
        let r = delta_stepping_on(&self.exec, &self.graph, source, self.delta);
        Ok((r.dist, r.ledger))
    }

    /// Early exit on the settled-bucket invariant
    /// ([`crate::delta_stepping::delta_stepping_to_on`]): bit-identical to
    /// the full run's `dist[v]`, so E4/E10 backend comparisons stay like
    /// with like.
    fn distance(&self, u: VId, v: VId) -> Result<Weight, SsspError> {
        let n = self.num_vertices();
        check_source(n, v)?;
        check_source(n, u)?;
        let r =
            crate::delta_stepping::delta_stepping_to_on(&self.exec, &self.graph, u, v, self.delta);
        Ok(r.dist)
    }
}

/// Exact sequential Dijkstra behind the [`DistanceOracle`] trait: the work
/// and wall-clock baseline of experiment E10. Its ledger charges every
/// operation as its own round (a sequential machine has depth = work).
pub struct DijkstraOracle {
    graph: Arc<Graph>,
    build_cost: Ledger,
}

impl DijkstraOracle {
    /// Wrap `graph`; there is no precomputation.
    pub fn new(graph: impl Into<Arc<Graph>>) -> Self {
        DijkstraOracle {
            graph: graph.into(),
            build_cost: Ledger::new(),
        }
    }
}

impl DistanceOracle for DijkstraOracle {
    fn name(&self) -> &'static str {
        "dijkstra"
    }

    fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    fn stretch_bound(&self) -> f64 {
        1.0
    }

    fn cost(&self) -> &Ledger {
        &self.build_cost
    }

    fn distances_from_with_ledger(&self, source: VId) -> Result<(Vec<Weight>, Ledger), SsspError> {
        check_source(self.num_vertices(), source)?;
        let r = pgraph::exact::dijkstra(&self.graph, source);
        // Sequential accounting: 2m edge relaxations + n log n heap
        // operations, one per round.
        let n = self.graph.num_vertices().max(1);
        let ops = 2 * self.graph.num_edges() as u64 + (n as u64) * ceil_log2(n).max(1) as u64;
        let mut ledger = Ledger::new();
        ledger.steps(ops, 1);
        Ok((r.dist, ledger))
    }

    /// Pop-`v` termination ([`pgraph::exact::dijkstra_to`]): the classical
    /// settled-vertex invariant makes the popped label final, bit-identical
    /// to the full run's `dist[v]`.
    fn distance(&self, u: VId, v: VId) -> Result<Weight, SsspError> {
        let n = self.num_vertices();
        check_source(n, v)?;
        check_source(n, u)?;
        Ok(pgraph::exact::dijkstra_to(&self.graph, u, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgraph::exact::dijkstra;
    use pgraph::gen;

    #[test]
    fn builder_defaults_match_contract() {
        let g = gen::gnm_connected(120, 360, 6, 1.0, 9.0);
        let oracle = Oracle::builder(g).build().unwrap();
        assert_eq!(oracle.pipeline(), Pipeline::Plain);
        assert_eq!(oracle.stretch_bound(), 1.25);
        let exact = dijkstra(oracle.graph(), 17).dist;
        let d = oracle.distances_from(17).unwrap();
        for v in 0..120 {
            assert!(d[v] >= exact[v] - 1e-6 * exact[v].max(1.0));
            assert!(d[v] <= 1.25 * exact[v] + 1e-9, "v={v}");
        }
    }

    #[test]
    fn auto_pipeline_selects_reduced_on_huge_aspect() {
        let g = gen::exponential_path(28, 3.0); // aspect 3^26 >> n^2
        let oracle = Oracle::builder(g).eps(0.5).build().unwrap();
        assert_eq!(oracle.pipeline(), Pipeline::Reduced);
        assert_eq!(oracle.name(), "hopset-reduced");
        let exact = dijkstra(oracle.graph(), 0).dist;
        let d = oracle.distances_from(0).unwrap();
        for v in 0..28 {
            assert!(d[v] >= exact[v] * (1.0 - 1e-9));
            assert!(d[v] <= 1.5 * exact[v] + 1e-9, "v={v}");
        }
    }

    #[test]
    fn auto_pipeline_stays_plain_on_unit_weights() {
        let g = gen::path(64);
        let oracle = Oracle::builder(g).build().unwrap();
        assert_eq!(oracle.pipeline(), Pipeline::Plain);
        assert_eq!(oracle.name(), "hopset");
    }

    #[test]
    fn builder_errors_are_typed() {
        let g = Arc::new(gen::path(16));
        match Oracle::builder(Arc::clone(&g)).eps(2.0).build() {
            Err(SsspError::Params(ParamError::BadEps(e))) => assert_eq!(e, 2.0),
            other => panic!("expected BadEps, got {other:?}"),
        }
        match Oracle::builder(Arc::clone(&g))
            .hop_cap(16)
            .pipeline(Pipeline::Reduced)
            .build()
        {
            Err(SsspError::Config(msg)) => assert!(msg.contains("hop_cap")),
            other => panic!("expected Config error, got {:?}", other.map(|_| ())),
        }
        // Auto + hop_cap resolves to plain instead of conflicting.
        let o = Oracle::builder(g).hop_cap(16).build().unwrap();
        assert_eq!(o.pipeline(), Pipeline::Plain);
        assert!(o.query_hops() <= 16);
    }

    #[test]
    fn invalid_sources_are_rejected_not_panicked() {
        let g = gen::path(10);
        let oracle = Oracle::builder(g).build().unwrap();
        assert!(matches!(
            oracle.distances_from(10),
            Err(SsspError::InvalidSource { source: 10, n: 10 })
        ));
        assert!(matches!(
            oracle.distances_multi(&[0, 99]),
            Err(SsspError::InvalidSource { source: 99, .. })
        ));
        assert!(matches!(
            oracle.distance(0, 10),
            Err(SsspError::InvalidSource { .. })
        ));
        assert!(matches!(oracle.spt(0), Err(SsspError::PathsNotRecorded)));
    }

    #[test]
    fn spt_from_the_same_built_object() {
        let g = gen::clique_chain(4, 7, 2.0);
        let oracle = Oracle::builder(g).paths(true).build().unwrap();
        // Distances and trees from one build.
        let d = oracle.distances_from(0).unwrap();
        let spt = oracle.spt(0).unwrap();
        let val = hopset::path_report::validate_spt(oracle.graph(), &spt);
        assert_eq!(val.non_graph_edges, 0);
        assert_eq!(val.missing, 0);
        assert!(val.max_stretch <= 1.25 + 1e-9, "{val:?}");
        // Every vertex the distance query reaches, the tree reaches too.
        for (td, qd) in spt.dist.iter().zip(&d) {
            assert_eq!(td.is_finite(), qd.is_finite());
        }
    }

    #[test]
    fn multi_source_rows_match_single_source() {
        let g = gen::road_grid(10, 10, 4, 1.0, 5.0);
        let oracle = Oracle::builder(g).build().unwrap();
        let sources = vec![0u32, 37, 99];
        let multi = oracle.distances_multi(&sources).unwrap();
        assert_eq!(multi.dist.num_sources(), 3);
        assert_eq!(multi.dist.num_targets(), 100);
        for (i, &s) in sources.iter().enumerate() {
            let single = oracle.distances_from(s).unwrap();
            assert_eq!(multi.dist.row(i), &single[..], "source {s}");
        }
        assert_eq!(multi.dist.to_nested()[1][37], 0.0);
    }

    #[test]
    fn nearest_source_is_one_exploration() {
        let g = gen::path(30);
        let oracle = Oracle::builder(g).build().unwrap();
        let d = oracle.distances_to_nearest(&[0, 29]).unwrap();
        assert_eq!(d[0], 0.0);
        assert_eq!(d[29], 0.0);
        assert!(d[15] <= 15.0 * 1.25 + 1e-9);
    }

    #[test]
    fn baselines_are_exact_through_the_trait() {
        let g = Arc::new(gen::gnm_connected(80, 240, 2, 1.0, 9.0));
        let exact = dijkstra(&g, 0).dist;
        let backends: Vec<Box<dyn DistanceOracle>> = vec![
            Box::new(DeltaSteppingOracle::new(Arc::clone(&g))),
            Box::new(DijkstraOracle::new(Arc::clone(&g))),
        ];
        for b in &backends {
            assert_eq!(b.stretch_bound(), 1.0);
            assert_eq!(b.cost().work(), 0, "no precompute for {}", b.name());
            let d = b.distances_from(0).unwrap();
            for v in 0..80 {
                assert!(
                    (d[v] - exact[v]).abs() < 1e-9 || (d[v] == INF && exact[v] == INF),
                    "{} v={v}",
                    b.name()
                );
            }
            // Generic point-to-point + nearest-source through the trait.
            assert!((b.distance(0, 40).unwrap() - exact[40]).abs() < 1e-9);
            let near = b.distances_to_nearest(&[0, 79]).unwrap();
            assert_eq!(near[0], 0.0);
            assert_eq!(near[79], 0.0);
        }
    }

    #[test]
    fn delta_stepping_oracle_validates_delta() {
        let g = Arc::new(gen::path(8));
        assert!(matches!(
            DeltaSteppingOracle::with_delta(Arc::clone(&g), 0.0),
            Err(SsspError::Config(_))
        ));
        let o = DeltaSteppingOracle::with_delta(g, 2.5).unwrap();
        assert_eq!(o.delta(), 2.5);
    }

    // Send/Sync static assertions, object safety, and cross-thread
    // determinism are pinned at the public surface in tests/oracle_api.rs.

    #[test]
    fn distance_matrix_shape() {
        let mut m = DistanceMatrix::with_targets(3);
        assert_eq!(m.num_sources(), 0);
        m.push_row(&[0.0, 1.0, 2.0]);
        m.push_row(&[5.0, 0.0, 1.0]);
        assert_eq!(m.num_sources(), 2);
        assert_eq!(m.row(1), &[5.0, 0.0, 1.0]);
        assert_eq!(m.as_slice().len(), 6);
        assert_eq!(
            m.to_nested(),
            vec![vec![0.0, 1.0, 2.0], vec![5.0, 0.0, 1.0]]
        );
    }

    #[test]
    fn stretch_curve_through_the_oracle() {
        let g = gen::path(128);
        let oracle = Oracle::builder(g).build().unwrap();
        let pts = oracle.stretch_curve(&[0], &[4, 16, 128]).unwrap();
        assert_eq!(pts.len(), 3);
        // Unreached counts are non-increasing in budget; exact at n hops.
        assert!(pts[0].unreached >= pts[2].unreached);
        assert_eq!(pts[2].unreached, 0);
        assert!(matches!(
            oracle.stretch_curve(&[999], &[4]),
            Err(SsspError::InvalidSource { .. })
        ));
    }
}
