//! Oracle snapshots — build once, serve forever.
//!
//! An [`Oracle`] is the expensive artifact of this workspace: the
//! deterministic hopset construction dominates its cost, while queries are
//! a β-round Bellman–Ford. This module makes the built oracle a shippable
//! file: [`Oracle::save_snapshot`] writes one container
//! (magic `PSSORACL`) that embeds the graph and hopset containers of
//! [`pgraph::snapshot`] / [`hopset::snapshot`] as raw sections plus every
//! derived parameter as a params block, and
//! [`OracleBuilder::from_snapshot`] loads it back without re-running any
//! construction.
//!
//! **Why the loaded oracle is bit-identical** (the determinism contract,
//! DESIGN.md §5/§11): queries consume exactly (a) the `G ∪ H` union CSR —
//! rebuilt here with the same `OverlayCsr::build_columns` call over the
//! same columns `build()` used — (b) the query hop budget, and (c) for SPT
//! extraction, the hopset's memory paths. All three are stored verbatim
//! (f64 weights as bit patterns), so every query on the loaded oracle
//! relaxes the same edges in the same deterministic order as on the
//! original. The full [`HopsetParams`] block is serialized field-by-field
//! rather than recomputed from (ε, κ, ρ) so a future constant change in
//! the derivation can never skew a loaded artifact. Construction-side
//! reports ([`BuiltHopset::scales`] / [`ReducedHopset::levels`]) are
//! diagnostics of the *construction run* and are not persisted — the
//! loaded reports are empty, the ledger totals are restored.

use crate::oracle::{Oracle, OracleBackend, OracleBuilder, Pipeline};
use hopset::multi_scale::BuiltHopset;
use hopset::params::{DeltaSchedule, HopsetParams, ParamMode};
use hopset::reduction::ReducedHopset;
use hopset::snapshot::{hopset_snapshot_size, read_hopset_snapshot, write_hopset_snapshot};
use pgraph::snapshot::{
    container_size, graph_snapshot_size, read_graph_snapshot, write_graph_snapshot,
    ContainerReader, ContainerWriter, ParamsBuf, ParamsReader, SectionDecl,
};
use pgraph::{OverlayCsr, UnionGraph};
use pram::pool::Executor;
use pram::Ledger;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

pub use pgraph::snapshot::SnapshotError;

/// Magic of the [`Oracle`] container.
pub const ORACLE_MAGIC: [u8; 8] = *b"PSSORACL";

fn corrupt(what: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt { what: what.into() }
}

fn encode_params(p: &mut ParamsBuf, o: &Oracle) {
    let ledger = match &o.backend {
        OracleBackend::Plain(b) => &b.ledger,
        OracleBackend::Reduced(r) => &r.ledger,
    };
    p.f64(o.eps)
        .u64(o.kappa as u64)
        .u8(o.paths as u8)
        .u8(match o.backend {
            OracleBackend::Plain(_) => 0,
            OracleBackend::Reduced(_) => 1,
        })
        .u64(o.query_hops as u64)
        .u64(ledger.work())
        .u64(ledger.depth())
        .u64(ledger.max_width());
    match &o.backend {
        OracleBackend::Plain(b) => {
            p.u32(b.k0).u32(b.lambda);
            let hp = &b.params;
            p.u64(hp.n as u64)
                .f64(hp.eps)
                .u64(hp.kappa as u64)
                .f64(hp.rho)
                .u8(match hp.mode {
                    ParamMode::Theory => 0,
                    ParamMode::Practical => 1,
                })
                .u8(match hp.delta_schedule {
                    DeltaSchedule::Corrected => 0,
                    DeltaSchedule::PaperLiteral => 1,
                })
                .u32(hp.log2n)
                .i64(hp.i0 as i64)
                .u64(hp.ell as u64)
                .u32(hp.degrees.len() as u32);
            for &d in &hp.degrees {
                p.u64(d as u64);
            }
            p.f64(hp.eps_int)
                .f64(hp.eps_scale)
                .u64(hp.beta as u64)
                .u64(hp.hop_limit as u64)
                .u64(hp.query_hops as u64)
                .u64(hp.sigma as u64);
        }
        OracleBackend::Reduced(r) => {
            p.u64(r.star_edges as u64).f64(r.eps);
        }
    }
}

fn as_usize(v: u64, what: &str) -> Result<usize, SnapshotError> {
    usize::try_from(v).map_err(|_| corrupt(format!("{what} = {v} overflows usize")))
}

fn decode_hopset_params(p: &mut ParamsReader<'_>) -> Result<HopsetParams, SnapshotError> {
    let n = as_usize(p.u64()?, "params.n")?;
    let eps = p.f64()?;
    let kappa = as_usize(p.u64()?, "params.kappa")?;
    let rho = p.f64()?;
    let mode = match p.u8()? {
        0 => ParamMode::Theory,
        1 => ParamMode::Practical,
        c => return Err(corrupt(format!("unknown param mode code {c}"))),
    };
    let delta_schedule = match p.u8()? {
        0 => DeltaSchedule::Corrected,
        1 => DeltaSchedule::PaperLiteral,
        c => return Err(corrupt(format!("unknown delta schedule code {c}"))),
    };
    let log2n = p.u32()?;
    let i0 = p.i64()? as isize;
    let ell = as_usize(p.u64()?, "params.ell")?;
    let deg_count = p.u32()? as usize;
    let mut degrees = Vec::with_capacity(deg_count.min(1 << 16));
    for _ in 0..deg_count {
        degrees.push(as_usize(p.u64()?, "params.degrees[i]")?);
    }
    let eps_int = p.f64()?;
    let eps_scale = p.f64()?;
    let beta = as_usize(p.u64()?, "params.beta")?;
    let hop_limit = as_usize(p.u64()?, "params.hop_limit")?;
    let query_hops = as_usize(p.u64()?, "params.query_hops")?;
    let sigma = as_usize(p.u64()?, "params.sigma")?;
    Ok(HopsetParams {
        n,
        eps,
        kappa,
        rho,
        mode,
        delta_schedule,
        log2n,
        i0,
        ell,
        degrees,
        eps_int,
        eps_scale,
        beta,
        hop_limit,
        query_hops,
        sigma,
    })
}

fn oracle_sections(o: &Oracle) -> Vec<SectionDecl> {
    let h = match &o.backend {
        OracleBackend::Plain(b) => &b.hopset,
        OracleBackend::Reduced(r) => &r.hopset,
    };
    vec![
        SectionDecl {
            tag: *b"grph",
            elem_size: 1,
            count: graph_snapshot_size(o.graph()),
        },
        SectionDecl {
            tag: *b"hops",
            elem_size: 1,
            count: hopset_snapshot_size(h),
        },
    ]
}

impl Oracle {
    /// Exact byte size [`Oracle::write_snapshot`] will emit.
    pub fn snapshot_size(&self) -> u64 {
        let mut params = ParamsBuf::new();
        encode_params(&mut params, self);
        container_size(params.len(), &oracle_sections(self))
    }

    /// Write this oracle as a binary snapshot: one container embedding the
    /// graph and hopset containers plus every derived parameter.
    pub fn write_snapshot(&self, mut w: impl Write) -> Result<(), SnapshotError> {
        let mut params = ParamsBuf::new();
        encode_params(&mut params, self);
        let mut cw = ContainerWriter::begin(
            &mut w,
            &ORACLE_MAGIC,
            params.as_slice(),
            oracle_sections(self),
        )?;
        cw.raw(*b"grph", |out| write_graph_snapshot(self.graph(), out))?;
        let h = match &self.backend {
            OracleBackend::Plain(b) => &b.hopset,
            OracleBackend::Reduced(r) => &r.hopset,
        };
        cw.raw(*b"hops", |out| write_hopset_snapshot(h, out))?;
        cw.finish()
    }

    /// Save this oracle to a snapshot file.
    pub fn save_snapshot(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.write_snapshot(&mut out)?;
        out.flush()?;
        Ok(())
    }
}

impl OracleBuilder {
    /// Load an oracle from a snapshot file written by
    /// [`Oracle::save_snapshot`] — no construction runs; query results are
    /// bit-identical to the oracle that was saved. The loaded oracle
    /// captures the process-default executor.
    pub fn from_snapshot(path: impl AsRef<Path>) -> Result<Oracle, SnapshotError> {
        // xlint: allow(ambient-threads, snapshot load is a construction-time boundary capturing the process default once)
        Self::from_snapshot_on(path, Executor::current())
    }

    /// Load an oracle from a snapshot file onto an explicit executor.
    pub fn from_snapshot_on(
        path: impl AsRef<Path>,
        exec: Executor,
    ) -> Result<Oracle, SnapshotError> {
        Self::from_snapshot_reader(std::io::BufReader::new(std::fs::File::open(path)?), exec)
    }

    /// Load an oracle from any reader (e.g. an in-memory buffer or a
    /// network stream) onto an explicit executor.
    pub fn from_snapshot_reader(r: impl Read, exec: Executor) -> Result<Oracle, SnapshotError> {
        let mut cr = ContainerReader::open(r, &ORACLE_MAGIC)?;
        let header = cr.params().to_vec();
        let mut p = ParamsReader::new(&header);
        let eps = p.f64()?;
        let kappa = as_usize(p.u64()?, "kappa")?;
        let paths = match p.u8()? {
            0 => false,
            1 => true,
            c => return Err(corrupt(format!("bad paths flag {c}"))),
        };
        let pipeline = match p.u8()? {
            0 => Pipeline::Plain,
            1 => Pipeline::Reduced,
            c => return Err(corrupt(format!("unknown pipeline code {c}"))),
        };
        let query_hops = as_usize(p.u64()?, "query_hops")?;
        let ledger = Ledger::from_parts(p.u64()?, p.u64()?, p.u64()?);

        let backend_head = match pipeline {
            Pipeline::Plain => {
                let k0 = p.u32()?;
                let lambda = p.u32()?;
                let params = decode_hopset_params(&mut p)?;
                if params.query_hops != query_hops {
                    return Err(corrupt(format!(
                        "stored query hop budget {query_hops} disagrees with params ({})",
                        params.query_hops
                    )));
                }
                Ok::<_, SnapshotError>((Some((k0, lambda, params)), 0, 0.0))
            }
            Pipeline::Reduced => {
                let star_edges = as_usize(p.u64()?, "star_edges")?;
                let reduced_eps = p.f64()?;
                Ok((None, star_edges, reduced_eps))
            }
            Pipeline::Auto => unreachable!("decoded from a two-valued code"),
        }?;

        let graph = cr.raw(*b"grph", |r| read_graph_snapshot(r))?;
        let hopset = cr.raw(*b"hops", |r| read_hopset_snapshot(r))?;
        let n = graph.num_vertices();

        // Cross-container validation the standalone hopset loader cannot do
        // (it does not know n): endpoint and path-vertex ranges.
        for (i, (&u, &v)) in hopset.us().iter().zip(hopset.vs()).enumerate() {
            if u as usize >= n || v as usize >= n {
                return Err(corrupt(format!(
                    "hopset edge {i} ({u}, {v}) out of vertex range {n}"
                )));
            }
        }
        for (i, mp) in hopset.paths.iter().enumerate() {
            if !mp.validate(n) {
                return Err(corrupt(format!(
                    "memory path {i} is structurally invalid for n = {n}"
                )));
            }
        }
        if paths && !hopset.all_paths_recorded() {
            return Err(corrupt(
                "paths flag set but not every hopset edge carries a memory path",
            ));
        }

        // Rebuild the union CSR with the same call `build()` uses — same
        // columns in, same deterministic bucketing, bit-identical queries.
        let csr = OverlayCsr::build_columns(n, hopset.us(), hopset.vs(), hopset.ws());
        let graph = Arc::new(graph);
        let union = UnionGraph::from_csr(Arc::clone(&graph), csr);

        let backend = match backend_head {
            (Some((k0, lambda, params)), _, _) => OracleBackend::Plain(BuiltHopset {
                hopset,
                params,
                scales: Vec::new(),
                ledger,
                k0,
                lambda,
            }),
            (None, star_edges, reduced_eps) => OracleBackend::Reduced(ReducedHopset {
                hopset,
                levels: Vec::new(),
                ledger,
                query_hops,
                star_edges,
                eps: reduced_eps,
            }),
        };

        Ok(Oracle {
            union,
            backend,
            eps,
            kappa,
            query_hops,
            paths,
            threads: None,
            exec,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::DistanceOracle;
    use pgraph::gen;

    fn roundtrip(o: &Oracle) -> Oracle {
        let mut buf = Vec::new();
        o.write_snapshot(&mut buf).unwrap();
        assert_eq!(buf.len() as u64, o.snapshot_size());
        // xlint: allow(ambient-threads, test loads onto the process default executor)
        OracleBuilder::from_snapshot_reader(buf.as_slice(), Executor::current()).unwrap()
    }

    #[test]
    fn plain_oracle_roundtrips_bit_identically() {
        let g = gen::road_grid(12, 12, 7, 1.0, 8.0);
        let o = Oracle::builder(g).eps(0.25).kappa(4).build().unwrap();
        let o2 = roundtrip(&o);
        assert_eq!(o2.pipeline(), Pipeline::Plain);
        assert_eq!(o.query_hops(), o2.query_hops());
        assert_eq!(o.hopset_size(), o2.hopset_size());
        assert_eq!(o.cost(), o2.cost());
        for src in [0u32, 77, 143] {
            let a = o.distances_from(src).unwrap();
            let b = o2.distances_from(src).unwrap();
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        assert_eq!(
            o.distance(0, 143).unwrap().to_bits(),
            o2.distance(0, 143).unwrap().to_bits()
        );
    }

    #[test]
    fn reduced_oracle_roundtrips() {
        let g = gen::exponential_path(28, 3.0);
        let o = Oracle::builder(g).eps(0.5).build().unwrap();
        assert_eq!(o.pipeline(), Pipeline::Reduced);
        let o2 = roundtrip(&o);
        assert_eq!(o2.pipeline(), Pipeline::Reduced);
        assert_eq!(o2.name(), "hopset-reduced");
        assert_eq!(
            o.reduced().unwrap().star_edges,
            o2.reduced().unwrap().star_edges
        );
        let a = o.distances_from(0).unwrap();
        let b = o2.distances_from(0).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn spt_serves_from_loaded_oracle() {
        let g = gen::clique_chain(4, 6, 2.0);
        let o = Oracle::builder(g).paths(true).build().unwrap();
        let o2 = roundtrip(&o);
        assert!(o2.has_paths());
        let a = o.spt(0).unwrap();
        let b = o2.spt(0).unwrap();
        assert_eq!(a.parent, b.parent);
        for (x, y) in a.dist.iter().zip(&b.dist) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn oracle_snapshot_error_paths_are_typed() {
        let g = gen::path(16);
        let o = Oracle::builder(g).build().unwrap();
        let mut buf = Vec::new();
        o.write_snapshot(&mut buf).unwrap();
        // xlint: allow(ambient-threads, test loads onto the process default executor)
        let exec = Executor::current();

        let mut bad = buf.clone();
        bad[3] = b'!';
        assert!(matches!(
            OracleBuilder::from_snapshot_reader(bad.as_slice(), exec.clone()),
            Err(SnapshotError::BadMagic { .. })
        ));

        let mut bad = buf.clone();
        bad[8..12].copy_from_slice(&3u32.to_le_bytes());
        assert!(matches!(
            OracleBuilder::from_snapshot_reader(bad.as_slice(), exec.clone()),
            Err(SnapshotError::UnsupportedVersion { found: 3, .. })
        ));

        let mut bad = buf.clone();
        bad[24] ^= 0x01;
        assert!(matches!(
            OracleBuilder::from_snapshot_reader(bad.as_slice(), exec.clone()),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));

        assert!(matches!(
            OracleBuilder::from_snapshot_reader(&buf[..buf.len() / 3], exec),
            Err(SnapshotError::Truncated { .. })
        ));
    }
}
