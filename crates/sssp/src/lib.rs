#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # sssp — (1+ε)-approximate shortest paths from deterministic hopsets
//!
//! The application layer of the reproduction: Theorem 3.8 (approximate
//! single-/multi-source shortest **distances**), Theorem 4.6 (approximate
//! shortest-path **trees**), and Theorems C.3/D.2 (the same without any
//! aspect-ratio assumption), plus the baselines the experiments compare
//! against and the stretch-measurement utilities.
//!
//! The public query surface is the [`oracle`] module: one owned,
//! `Send + Sync` [`Oracle`] (built fluently with [`Oracle::builder`])
//! serves every query the paper supports, and the [`DistanceOracle`]
//! trait puts the exact baselines ([`DeltaSteppingOracle`],
//! [`DijkstraOracle`]) behind the same interface.
//!
//! ```
//! use pgraph::gen;
//! use sssp::{DistanceOracle, Oracle};
//!
//! let g = gen::gnm_connected(128, 384, 3, 1.0, 8.0);
//! let exact = pgraph::exact::dijkstra(&g, 0).dist;
//! let oracle = Oracle::builder(g).eps(0.25).kappa(4).build().unwrap();
//! let d = oracle.distances_from(0).unwrap();
//! for v in 0..128 {
//!     assert!(d[v] >= exact[v] - 1e-9);
//!     assert!(d[v] <= oracle.stretch_bound() * exact[v] + 1e-9);
//! }
//! ```

pub mod assd;
pub mod baseline;
pub mod cache;
pub mod delta_stepping;
pub mod eval;
pub mod landmark;
pub mod oracle;
pub mod snapshot;
pub mod spt;

pub use assd::ApproxShortestPaths;
pub use cache::{AdmissionConfig, CacheConfig, CacheStats, CachedOracle, CachedRow, FillPolicy};
pub use delta_stepping::{delta_stepping, DeltaSteppingResult};
pub use eval::{stretch_vs_hops, HopCurvePoint};
pub use landmark::{LandmarkBounds, LandmarkConfig, LandmarkPlane};
pub use oracle::{
    DeltaSteppingOracle, DijkstraOracle, DistanceMatrix, DistanceOracle, MultiSourceResult, Oracle,
    OracleBuilder, Pipeline, SsspError,
};
pub use snapshot::{SnapshotError, ORACLE_MAGIC};
pub use spt::ApproxSptEngine;
