#![warn(missing_docs)]
//! # sssp — (1+ε)-approximate shortest paths from deterministic hopsets
//!
//! The application layer of the reproduction: Theorem 3.8 (approximate
//! single-/multi-source shortest **distances**), Theorem 4.6 (approximate
//! shortest-path **trees**), and Theorems C.3/D.2 (the same without any
//! aspect-ratio assumption), plus the baselines the experiments compare
//! against and the stretch-measurement utilities.
//!
//! ```
//! use pgraph::gen;
//! use sssp::ApproxShortestPaths;
//!
//! let g = gen::gnm_connected(128, 384, 3, 1.0, 8.0);
//! let asp = ApproxShortestPaths::build(&g, 0.25, 4).unwrap();
//! let d = asp.distances_from(0);
//! let exact = pgraph::exact::dijkstra(&g, 0).dist;
//! for v in 0..128 {
//!     assert!(d[v] >= exact[v] - 1e-9);
//!     assert!(d[v] <= 1.25 * exact[v] + 1e-9);
//! }
//! ```

pub mod assd;
pub mod baseline;
pub mod delta_stepping;
pub mod eval;
pub mod spt;

pub use assd::{ApproxShortestPaths, MultiSourceResult};
pub use delta_stepping::{delta_stepping, DeltaSteppingResult};
pub use eval::{stretch_vs_hops, HopCurvePoint};
pub use spt::ApproxSptEngine;
